"""Condition ASTs for the fragment and view languages.

Section 2.1 defines client-side conditions ψ as AND-OR combinations of
``IS OF E``, ``IS OF (ONLY E)``, ``A IS NULL``, ``A IS NOT NULL`` and
``A θ c``; store-side conditions χ are the same minus the type atoms.
We additionally support NOT (needed internally by cell enumeration and by
the ``ch_p`` rewrite of Algorithm 2) and the constants TRUE/FALSE.

All nodes are immutable and hashable so conditions can live inside view
trees that are compared, cached and rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, Tuple

from repro.errors import EvaluationError

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Condition:
    """Base class for condition nodes."""

    def atoms(self) -> Iterator["Condition"]:
        """Yield every atomic condition in this tree (with duplicates)."""
        yield self

    def transform(self, fn: Callable[["Condition"], "Condition"]) -> "Condition":
        """Rebuild the tree bottom-up, applying *fn* to every node.

        *fn* receives each node after its children were transformed and
        returns the replacement node (possibly the node itself).
        """
        return fn(self)

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return and_(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return or_(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class TrueCond(Condition):
    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseCond(Condition):
    def __str__(self) -> str:
        return "FALSE"


TRUE = TrueCond()
FALSE = FalseCond()


@dataclass(frozen=True)
class IsOf(Condition):
    """``IS OF E``: satisfied by entities of type E and derived types."""

    type_name: str

    def __str__(self) -> str:
        return f"IS OF {self.type_name}"


@dataclass(frozen=True)
class IsOfOnly(Condition):
    """``IS OF (ONLY E)``: satisfied by entities of exactly type E."""

    type_name: str

    def __str__(self) -> str:
        return f"IS OF (ONLY {self.type_name})"


@dataclass(frozen=True)
class IsNull(Condition):
    attr: str

    def __str__(self) -> str:
        return f"{self.attr} IS NULL"


@dataclass(frozen=True)
class IsNotNull(Condition):
    attr: str

    def __str__(self) -> str:
        return f"{self.attr} IS NOT NULL"


@dataclass(frozen=True)
class Comparison(Condition):
    """``A θ c`` for a comparison operator θ and constant c.

    Comparisons with NULL on the attribute side evaluate to false, matching
    SQL's treatment under a WHERE clause.
    """

    attr: str
    op: str
    const: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.attr} {self.op} {self.const!r}"


@dataclass(frozen=True)
class And(Condition):
    operands: Tuple[Condition, ...]

    def atoms(self) -> Iterator[Condition]:
        for operand in self.operands:
            yield from operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(And(tuple(op.transform(fn) for op in self.operands)))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Condition):
    operands: Tuple[Condition, ...]

    def atoms(self) -> Iterator[Condition]:
        for operand in self.operands:
            yield from operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(Or(tuple(op.transform(fn) for op in self.operands)))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition

    def atoms(self) -> Iterator[Condition]:
        yield from self.operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(Not(self.operand.transform(fn)))

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ---------------------------------------------------------------------------
# Smart constructors (light structural simplification at build time)
# ---------------------------------------------------------------------------

def and_(*operands: Condition) -> Condition:
    """N-ary AND with flattening and TRUE/FALSE absorption."""
    flat = []
    for operand in operands:
        if isinstance(operand, TrueCond):
            continue
        if isinstance(operand, FalseCond):
            return FALSE
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*operands: Condition) -> Condition:
    """N-ary OR with flattening and TRUE/FALSE absorption."""
    flat = []
    for operand in operands:
        if isinstance(operand, FalseCond):
            continue
        if isinstance(operand, TrueCond):
            return TRUE
        if isinstance(operand, Or):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def referenced_attrs(condition: Condition) -> FrozenSet[str]:
    """Names of all attributes mentioned by null-test or comparison atoms."""
    result = set()
    for atom in condition.atoms():
        if isinstance(atom, (IsNull, IsNotNull, Comparison)):
            result.add(atom.attr)
    return frozenset(result)


def referenced_types(condition: Condition) -> FrozenSet[str]:
    """Names of all entity types mentioned by type atoms."""
    result = set()
    for atom in condition.atoms():
        if isinstance(atom, (IsOf, IsOfOnly)):
            result.add(atom.type_name)
    return frozenset(result)


def has_type_atoms(condition: Condition) -> bool:
    return bool(referenced_types(condition))


class TupleContext:
    """What a condition needs to evaluate: attribute lookup + type test.

    Client tuples know their concrete type; store tuples do not (type atoms
    over store tuples raise).  ``attr_value`` must raise KeyError for
    attributes the tuple does not carry.
    """

    def attr_value(self, name: str) -> object:
        raise NotImplementedError

    def is_of(self, type_name: str, only: bool) -> bool:
        raise NotImplementedError


def evaluate_condition(condition: Condition, context: TupleContext) -> bool:
    """Evaluate *condition* against a tuple context.

    Attributes missing from the tuple make comparison and null-test atoms
    false (the fragment language only mentions an attribute under a type
    condition guaranteeing its presence, so this never changes fragment
    semantics; it gives AND-OR combinations a total semantics).
    """
    if isinstance(condition, TrueCond):
        return True
    if isinstance(condition, FalseCond):
        return False
    if isinstance(condition, IsOf):
        return context.is_of(condition.type_name, only=False)
    if isinstance(condition, IsOfOnly):
        return context.is_of(condition.type_name, only=True)
    if isinstance(condition, IsNull):
        try:
            return context.attr_value(condition.attr) is None
        except KeyError:
            return False
    if isinstance(condition, IsNotNull):
        try:
            return context.attr_value(condition.attr) is not None
        except KeyError:
            return False
    if isinstance(condition, Comparison):
        try:
            value = context.attr_value(condition.attr)
        except KeyError:
            return False
        if value is None:
            return False
        return _compare(value, condition.op, condition.const)
    if isinstance(condition, And):
        return all(evaluate_condition(op, context) for op in condition.operands)
    if isinstance(condition, Or):
        return any(evaluate_condition(op, context) for op in condition.operands)
    if isinstance(condition, Not):
        return not evaluate_condition(condition.operand, context)
    raise EvaluationError(f"unknown condition node {condition!r}")


def _compare(value: object, op: str, const: object) -> bool:
    try:
        if op == "=":
            return value == const
        if op == "!=":
            return value != const
        if op == "<":
            return value < const  # type: ignore[operator]
        if op == "<=":
            return value <= const  # type: ignore[operator]
        if op == ">":
            return value > const  # type: ignore[operator]
        if op == ">=":
            return value >= const  # type: ignore[operator]
    except TypeError as exc:
        raise EvaluationError(f"cannot compare {value!r} {op} {const!r}") from exc
    raise EvaluationError(f"unknown comparison operator {op!r}")
