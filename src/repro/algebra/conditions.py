"""Condition ASTs for the fragment and view languages.

Section 2.1 defines client-side conditions ψ as AND-OR combinations of
``IS OF E``, ``IS OF (ONLY E)``, ``A IS NULL``, ``A IS NOT NULL`` and
``A θ c``; store-side conditions χ are the same minus the type atoms.
We additionally support NOT (needed internally by cell enumeration and by
the ``ch_p`` rewrite of Algorithm 2) and the constants TRUE/FALSE.

All nodes are immutable and hashable so conditions can live inside view
trees that are compared, cached and rewritten.

Nodes are **hash-consed**: construction consults a process-wide interning
table, so structurally identical trees built from interned parts come back
as the *same* object, equality usually short-circuits on identity, and the
structural hash of a node is computed once (children contribute their own
precomputed hashes, so hashing a composite is O(#children), not
O(subtree)).  The containment engine relies on this to share bitset truth
vectors by node identity.  Interning is best-effort: unpickled or
hand-built duplicates are merely unshared, never incorrect, because
equality and hashing stay fully structural.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, Tuple

from repro.errors import EvaluationError

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# Hash-consing machinery
# ---------------------------------------------------------------------------

_INTERN_LOCK = threading.Lock()
#: intern key -> canonical node.  Values are held weakly so conditions that
#: fall out of use do not pin the table forever; a live entry's key can only
#: reference live children (the entry's node holds them), so the ``id``-based
#: child keys below can never alias a collected object.
_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
_INTERN_STATS = {"hits": 0, "misses": 0, "bypassed": 0}


def _intern_part(value: object) -> object:
    """One component of an intern key.

    Child conditions key by *identity* (bottom-up construction makes equal
    subtrees identical objects, and identity never conflates values that
    compare equal but differ in type, e.g. ``1`` vs ``1.0``); primitives are
    type-tagged for the same reason.
    """
    if isinstance(value, Condition):
        return ("c", id(value))
    if isinstance(value, tuple):
        return ("t",) + tuple(_intern_part(v) for v in value)
    return (type(value), value)


def intern_stats() -> Dict[str, int]:
    """Hit/miss/bypass counters of the condition interning table."""
    with _INTERN_LOCK:
        return dict(_INTERN_STATS)


class Condition:
    """Base class for condition nodes.

    Subclasses are frozen dataclasses declared with ``eq=False`` so the
    identity-first ``__eq__``/``__hash__`` defined here apply; ``__new__``
    interns every construction with arguments.
    """

    def __new__(cls, *args, **kwargs):
        if not args and not kwargs:
            # TRUE/FALSE construction and pickle/deepcopy reconstruction
            # (``cls.__new__(cls)``): never intern — unpickling initialises
            # fields *after* __new__, so an interned hit here could alias an
            # uninitialised or unrelated instance.
            return super().__new__(cls)
        try:
            key = (cls,) + tuple(_intern_part(a) for a in args) + tuple(
                (name, _intern_part(kwargs[name])) for name in sorted(kwargs)
            )
            with _INTERN_LOCK:
                existing = _INTERN.get(key)
                if existing is not None:
                    _INTERN_STATS["hits"] += 1
                    # dataclass __init__ re-sets the same field values on the
                    # returned instance; harmless by key construction.
                    return existing
        except TypeError:  # unhashable argument: skip interning
            with _INTERN_LOCK:
                _INTERN_STATS["bypassed"] += 1
            return super().__new__(cls)
        node = super().__new__(cls)
        with _INTERN_LOCK:
            _INTERN_STATS["misses"] += 1
            _INTERN[key] = node
        return node

    # -- precomputed structural hash ------------------------------------
    def __post_init__(self) -> None:
        object.__setattr__(self, "_shash", self._structural_hash())

    def _structural_hash(self) -> int:
        parts = [self.__class__.__name__]
        parts.extend(getattr(self, name) for name in self.__dataclass_fields__)
        return hash(tuple(parts))

    def __hash__(self) -> int:
        try:
            return self._shash  # type: ignore[attr-defined]
        except AttributeError:  # unpickled / copied instance: compute lazily
            value = self._structural_hash()
            object.__setattr__(self, "_shash", value)
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__dataclass_fields__
        )

    def __getstate__(self):
        # The structural hash uses Python's per-process salted string hash;
        # shipping it across a process boundary (the process executor
        # pickles mappings and views) would break dict invariants in the
        # worker.  Drop it; __hash__ recomputes lazily.
        state = dict(self.__dict__)
        state.pop("_shash", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def atoms(self) -> Iterator["Condition"]:
        """Yield every atomic condition in this tree (with duplicates)."""
        yield self

    def transform(self, fn: Callable[["Condition"], "Condition"]) -> "Condition":
        """Rebuild the tree bottom-up, applying *fn* to every node.

        *fn* receives each node after its children were transformed and
        returns the replacement node (possibly the node itself).
        """
        return fn(self)

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return and_(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return or_(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True, eq=False)
class TrueCond(Condition):
    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True, eq=False)
class FalseCond(Condition):
    def __str__(self) -> str:
        return "FALSE"


TRUE = TrueCond()
FALSE = FalseCond()


@dataclass(frozen=True, eq=False)
class IsOf(Condition):
    """``IS OF E``: satisfied by entities of type E and derived types."""

    type_name: str

    def __str__(self) -> str:
        return f"IS OF {self.type_name}"


@dataclass(frozen=True, eq=False)
class IsOfOnly(Condition):
    """``IS OF (ONLY E)``: satisfied by entities of exactly type E."""

    type_name: str

    def __str__(self) -> str:
        return f"IS OF (ONLY {self.type_name})"


@dataclass(frozen=True, eq=False)
class IsNull(Condition):
    attr: str

    def __str__(self) -> str:
        return f"{self.attr} IS NULL"


@dataclass(frozen=True, eq=False)
class IsNotNull(Condition):
    attr: str

    def __str__(self) -> str:
        return f"{self.attr} IS NOT NULL"


@dataclass(frozen=True, eq=False)
class Comparison(Condition):
    """``A θ c`` for a comparison operator θ and constant c.

    Comparisons with NULL on the attribute side evaluate to false, matching
    SQL's treatment under a WHERE clause.
    """

    attr: str
    op: str
    const: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")
        super().__post_init__()

    def __str__(self) -> str:
        return f"{self.attr} {self.op} {self.const!r}"


@dataclass(frozen=True, eq=False)
class And(Condition):
    operands: Tuple[Condition, ...]

    def atoms(self) -> Iterator[Condition]:
        for operand in self.operands:
            yield from operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(And(tuple(op.transform(fn) for op in self.operands)))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, eq=False)
class Or(Condition):
    operands: Tuple[Condition, ...]

    def atoms(self) -> Iterator[Condition]:
        for operand in self.operands:
            yield from operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(Or(tuple(op.transform(fn) for op in self.operands)))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, eq=False)
class Not(Condition):
    operand: Condition

    def atoms(self) -> Iterator[Condition]:
        yield from self.operand.atoms()

    def transform(self, fn: Callable[[Condition], Condition]) -> Condition:
        return fn(Not(self.operand.transform(fn)))

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ---------------------------------------------------------------------------
# Smart constructors (light structural simplification at build time)
# ---------------------------------------------------------------------------

def and_(*operands: Condition) -> Condition:
    """N-ary AND with flattening and TRUE/FALSE absorption."""
    flat = []
    for operand in operands:
        if isinstance(operand, TrueCond):
            continue
        if isinstance(operand, FalseCond):
            return FALSE
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*operands: Condition) -> Condition:
    """N-ary OR with flattening and TRUE/FALSE absorption."""
    flat = []
    for operand in operands:
        if isinstance(operand, FalseCond):
            continue
        if isinstance(operand, TrueCond):
            return TRUE
        if isinstance(operand, Or):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def referenced_attrs(condition: Condition) -> FrozenSet[str]:
    """Names of all attributes mentioned by null-test or comparison atoms."""
    result = set()
    for atom in condition.atoms():
        if isinstance(atom, (IsNull, IsNotNull, Comparison)):
            result.add(atom.attr)
    return frozenset(result)


def referenced_types(condition: Condition) -> FrozenSet[str]:
    """Names of all entity types mentioned by type atoms."""
    result = set()
    for atom in condition.atoms():
        if isinstance(atom, (IsOf, IsOfOnly)):
            result.add(atom.type_name)
    return frozenset(result)


def has_type_atoms(condition: Condition) -> bool:
    return bool(referenced_types(condition))


class TupleContext:
    """What a condition needs to evaluate: attribute lookup + type test.

    Client tuples know their concrete type; store tuples do not (type atoms
    over store tuples raise).  ``attr_value`` must raise KeyError for
    attributes the tuple does not carry.
    """

    def attr_value(self, name: str) -> object:
        raise NotImplementedError

    def is_of(self, type_name: str, only: bool) -> bool:
        raise NotImplementedError


def evaluate_condition(condition: Condition, context: TupleContext) -> bool:
    """Evaluate *condition* against a tuple context.

    Attributes missing from the tuple make comparison and null-test atoms
    false (the fragment language only mentions an attribute under a type
    condition guaranteeing its presence, so this never changes fragment
    semantics; it gives AND-OR combinations a total semantics).
    """
    if isinstance(condition, TrueCond):
        return True
    if isinstance(condition, FalseCond):
        return False
    if isinstance(condition, IsOf):
        return context.is_of(condition.type_name, only=False)
    if isinstance(condition, IsOfOnly):
        return context.is_of(condition.type_name, only=True)
    if isinstance(condition, IsNull):
        try:
            return context.attr_value(condition.attr) is None
        except KeyError:
            return False
    if isinstance(condition, IsNotNull):
        try:
            return context.attr_value(condition.attr) is not None
        except KeyError:
            return False
    if isinstance(condition, Comparison):
        try:
            value = context.attr_value(condition.attr)
        except KeyError:
            return False
        if value is None:
            return False
        return _compare(value, condition.op, condition.const)
    if isinstance(condition, And):
        return all(evaluate_condition(op, context) for op in condition.operands)
    if isinstance(condition, Or):
        return any(evaluate_condition(op, context) for op in condition.operands)
    if isinstance(condition, Not):
        return not evaluate_condition(condition.operand, context)
    raise EvaluationError(f"unknown condition node {condition!r}")


def compare_values(value: object, op: str, const: object) -> bool:
    """The comparison kernel: ``value θ const`` with SQL error semantics.

    Shared by the interpreter (via :func:`evaluate_condition`) and the
    compiled predicates of :mod:`repro.backend.physical`, so both paths
    agree on operator meaning and on raising :class:`EvaluationError`
    for incomparable operands.  ``value`` must already be non-NULL.
    """
    return _compare(value, op, const)


def _compare(value: object, op: str, const: object) -> bool:
    try:
        if op == "=":
            return value == const
        if op == "!=":
            return value != const
        if op == "<":
            return value < const  # type: ignore[operator]
        if op == "<=":
            return value <= const  # type: ignore[operator]
        if op == ">":
            return value > const  # type: ignore[operator]
        if op == ">=":
            return value >= const  # type: ignore[operator]
    except TypeError as exc:
        raise EvaluationError(f"cannot compare {value!r} {op} {const!r}") from exc
    raise EvaluationError(f"unknown comparison operator {op!r}")
