"""Constructor expressions (the τ of a view).

Section 2.2 writes a query view as ``(Q_E | τ_E)`` where ``τ_E`` states how
to build entities from the relational output of ``Q_E`` — typically an
if-then-else chain over provenance flags, e.g.::

    if (from_Emp = true) then Employee(Id, Name, Department)
    else Person(Id, Name)

Update views use the analogous ``(Q_T | τ_T)`` with a row constructor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.algebra.conditions import Condition, evaluate_condition
from repro.algebra.queries import Col, Const, CtorExpr
from repro.edm.instances import Entity
from repro.errors import EvaluationError


def _eval_expr(expr: CtorExpr, row: Mapping[str, object]) -> object:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Col):
        if expr.name not in row:
            raise EvaluationError(f"constructor references missing column {expr.name!r}")
        return row[expr.name]
    raise EvaluationError(f"unknown constructor expression {expr!r}")


class _RowContext:
    """Adapts a plain result row to the condition-evaluation protocol."""

    def __init__(self, row: Mapping[str, object]) -> None:
        self._row = row

    def attr_value(self, name: str) -> object:
        if name not in self._row:
            raise KeyError(name)
        return self._row[name]

    def is_of(self, type_name: str, only: bool) -> bool:
        raise EvaluationError("type atoms cannot appear in constructor conditions")


class Constructor:
    """Base class for τ expressions."""

    def construct(self, row: Mapping[str, object]) -> object:
        raise NotImplementedError

    def constructed_types(self) -> Tuple[str, ...]:
        """All entity types this constructor can instantiate."""
        raise NotImplementedError


@dataclass(frozen=True)
class EntityCtor(Constructor):
    """``E(a1, ..., an)``: build an entity of a fixed concrete type.

    ``assignments`` maps each attribute of E to a column of the query output
    or a constant (constants arise from client-side conditions that pin an
    attribute, Section 3.3's gender example).
    """

    type_name: str
    assignments: Tuple[Tuple[str, CtorExpr], ...]

    @staticmethod
    def identity(type_name: str, attr_names) -> "EntityCtor":
        """The common case ``E(att(E))``: each attribute from its own column."""
        return EntityCtor(type_name, tuple((a, Col(a)) for a in attr_names))

    def construct(self, row: Mapping[str, object]) -> Entity:
        values = {attr: _eval_expr(expr, row) for attr, expr in self.assignments}
        return Entity.of(self.type_name, **values)

    def constructed_types(self) -> Tuple[str, ...]:
        return (self.type_name,)

    def __str__(self) -> str:
        args = ", ".join(
            attr if isinstance(expr, Col) and expr.name == attr else f"{attr}={expr}"
            for attr, expr in self.assignments
        )
        return f"{self.type_name}({args})"


@dataclass(frozen=True)
class IfCtor(Constructor):
    """``if (cond) then τ1 else τ2`` over the query output row."""

    condition: Condition
    then_ctor: Constructor
    else_ctor: Constructor

    def construct(self, row: Mapping[str, object]) -> object:
        if evaluate_condition(self.condition, _RowContext(row)):
            return self.then_ctor.construct(row)
        return self.else_ctor.construct(row)

    def constructed_types(self) -> Tuple[str, ...]:
        return self.then_ctor.constructed_types() + self.else_ctor.constructed_types()

    def __str__(self) -> str:
        return f"if ({self.condition}) then {self.then_ctor} else {self.else_ctor}"


@dataclass(frozen=True)
class RowCtor(Constructor):
    """``T(c1, ..., cn)``: build a store row for table ``table_name``."""

    table_name: str
    assignments: Tuple[Tuple[str, CtorExpr], ...]

    @staticmethod
    def identity(table_name: str, column_names) -> "RowCtor":
        return RowCtor(table_name, tuple((c, Col(c)) for c in column_names))

    def construct(self, row: Mapping[str, object]) -> Dict[str, object]:
        return {column: _eval_expr(expr, row) for column, expr in self.assignments}

    def constructed_types(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        args = ", ".join(
            col if isinstance(expr, Col) and expr.name == col else f"{col}={expr}"
            for col, expr in self.assignments
        )
        return f"{self.table_name}({args})"


@dataclass(frozen=True)
class AssociationCtor(Constructor):
    """``A(PK1, PK2)``: build an association tuple from query output."""

    assoc_name: str
    assignments: Tuple[Tuple[str, CtorExpr], ...]

    @staticmethod
    def identity(assoc_name: str, attr_names) -> "AssociationCtor":
        return AssociationCtor(assoc_name, tuple((a, Col(a)) for a in attr_names))

    def construct(self, row: Mapping[str, object]) -> Tuple[object, ...]:
        return tuple(_eval_expr(expr, row) for _, expr in self.assignments)

    def construct_map(self, row: Mapping[str, object]) -> Dict[str, object]:
        """Qualified attribute name → value; order-independent access for
        reconstruction (the fragment's α order need not match end order)."""
        return {attr: _eval_expr(expr, row) for attr, expr in self.assignments}

    def constructed_types(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        args = ", ".join(attr for attr, _ in self.assignments)
        return f"{self.assoc_name}({args})"
