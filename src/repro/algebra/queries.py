"""Query ASTs: project-select fragment queries and the extended view algebra.

Fragment sides (Section 2.1) are pure project-select queries over a single
entity set, association set, or table.  Compiled views additionally need
natural joins, left/full outer joins and UNION ALL (see Figure 2 and
Algorithms 1-2), plus computed constant columns such as ``true AS tE``
(provenance flags) and ``CAST(NULL) AS BillAddr`` (padding).

All nodes are immutable; joins are *natural* (on shared output column
names), which is exactly what the paper's view-generation algorithms
produce after their explicit renamings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algebra.conditions import Condition, TRUE
from repro.errors import EvaluationError


# ---------------------------------------------------------------------------
# Projection expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Col:
    """Reference to an input column/attribute by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant output value (``true AS tE``, ``NULL AS BillAddr``)."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if self.value is True:
            return "True"
        if self.value is False:
            return "False"
        return repr(self.value)


CtorExpr = Union[Col, Const]


@dataclass(frozen=True)
class ProjItem:
    """One output column of a projection: ``expr AS output``."""

    output: str
    expr: CtorExpr

    def __str__(self) -> str:
        if isinstance(self.expr, Col) and self.expr.name == self.output:
            return self.output
        return f"{self.expr} AS {self.output}"


def items_from_names(names: Sequence[str]) -> Tuple[ProjItem, ...]:
    """Identity projection items for the given column names."""
    return tuple(ProjItem(name, Col(name)) for name in names)


def items_from_renaming(renaming: Mapping[str, str]) -> Tuple[ProjItem, ...]:
    """Items for ``π_{in AS out}``: keys are input names, values outputs."""
    return tuple(ProjItem(out, Col(inp)) for inp, out in renaming.items())


# ---------------------------------------------------------------------------
# Query nodes
# ---------------------------------------------------------------------------

class Query:
    """Base class for all query nodes."""

    def children(self) -> Tuple["Query", ...]:
        return ()

    def walk(self) -> Iterator["Query"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def transform_conditions(self, fn: Callable[[Condition], Condition]) -> "Query":
        """Rebuild the query with *fn* applied to every Select condition tree."""
        raise NotImplementedError


@dataclass(frozen=True)
class SetScan(Query):
    """Scan of an entity set; yields each entity's attributes + concrete type."""

    set_name: str

    def transform_conditions(self, fn):
        return self

    def __str__(self) -> str:
        return self.set_name


@dataclass(frozen=True)
class AssociationScan(Query):
    """Scan of an association set; yields role-qualified key attributes."""

    assoc_name: str

    def transform_conditions(self, fn):
        return self

    def __str__(self) -> str:
        return self.assoc_name


@dataclass(frozen=True)
class TableScan(Query):
    """Scan of a store table."""

    table_name: str

    def transform_conditions(self, fn):
        return self

    def __str__(self) -> str:
        return self.table_name


@dataclass(frozen=True)
class Select(Query):
    source: Query
    condition: Condition

    def children(self):
        return (self.source,)

    def transform_conditions(self, fn):
        return Select(self.source.transform_conditions(fn), self.condition.transform(fn))

    def __str__(self) -> str:
        return f"σ[{self.condition}]({self.source})"


@dataclass(frozen=True)
class Project(Query):
    source: Query
    items: Tuple[ProjItem, ...]

    def __post_init__(self) -> None:
        outputs = [item.output for item in self.items]
        if len(outputs) != len(set(outputs)):
            raise EvaluationError(f"duplicate output columns in projection: {outputs}")

    def children(self):
        return (self.source,)

    def transform_conditions(self, fn):
        return Project(self.source.transform_conditions(fn), self.items)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(item.output for item in self.items)

    def __str__(self) -> str:
        rendered = ", ".join(str(item) for item in self.items)
        return f"π[{rendered}]({self.source})"


@dataclass(frozen=True)
class Join(Query):
    """Inner join.

    ``on=None`` joins naturally (on all shared output column names);
    ``on=(c1, ...)`` joins on exactly those columns, and any *other*
    shared columns are merged by COALESCE(left, right) — the behaviour
    view generation needs when several contributions expose the same
    client attribute but a row only populates one of them.
    """

    left: Query
    right: Query
    on: Optional[Tuple[str, ...]] = None

    def children(self):
        return (self.left, self.right)

    def transform_conditions(self, fn):
        return Join(
            self.left.transform_conditions(fn),
            self.right.transform_conditions(fn),
            self.on,
        )

    def __str__(self) -> str:
        suffix = f" ON {','.join(self.on)}" if self.on else ""
        return f"({self.left} ⋈{suffix} {self.right})"


@dataclass(frozen=True)
class LeftOuterJoin(Query):
    """Left outer join; unmatched left rows pad right-only columns.
    ``on`` semantics as for :class:`Join`."""

    left: Query
    right: Query
    on: Optional[Tuple[str, ...]] = None

    def children(self):
        return (self.left, self.right)

    def transform_conditions(self, fn):
        return LeftOuterJoin(
            self.left.transform_conditions(fn),
            self.right.transform_conditions(fn),
            self.on,
        )

    def __str__(self) -> str:
        suffix = f" ON {','.join(self.on)}" if self.on else ""
        return f"({self.left} ⟕{suffix} {self.right})"


@dataclass(frozen=True)
class FullOuterJoin(Query):
    """Full outer join; used by partitioned entity query views.
    ``on`` semantics as for :class:`Join`."""

    left: Query
    right: Query
    on: Optional[Tuple[str, ...]] = None

    def children(self):
        return (self.left, self.right)

    def transform_conditions(self, fn):
        return FullOuterJoin(
            self.left.transform_conditions(fn),
            self.right.transform_conditions(fn),
            self.on,
        )

    def __str__(self) -> str:
        suffix = f" ON {','.join(self.on)}" if self.on else ""
        return f"({self.left} ⟗{suffix} {self.right})"


@dataclass(frozen=True)
class UnionAll(Query):
    """Union of branches; narrower branches are padded with NULL columns,
    mirroring the explicit ``CAST (NULL AS ...)`` padding of Figure 2."""

    branches: Tuple[Query, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise EvaluationError("UnionAll needs at least two branches")

    def children(self):
        return self.branches

    def transform_conditions(self, fn):
        return UnionAll(tuple(b.transform_conditions(fn) for b in self.branches))

    def __str__(self) -> str:
        return "(" + " ∪ ".join(str(b) for b in self.branches) + ")"


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def project_select(
    source: Query,
    condition: Condition = TRUE,
    items: Sequence[ProjItem] = (),
) -> Query:
    """``π_items(σ_condition(source))`` with trivial parts elided."""
    from repro.algebra.conditions import TrueCond

    query: Query = source
    if not isinstance(condition, TrueCond):
        query = Select(query, condition)
    if items:
        query = Project(query, tuple(items))
    return query


def union_all(branches: Sequence[Query]) -> Query:
    branches = tuple(branches)
    if not branches:
        raise EvaluationError("cannot union zero branches")
    if len(branches) == 1:
        return branches[0]
    return UnionAll(branches)


def leaf_sources(query: Query) -> Tuple[Query, ...]:
    """All scan leaves of a query tree."""
    return tuple(
        node
        for node in query.walk()
        if isinstance(node, (SetScan, AssociationScan, TableScan))
    )


def scanned_names(query: Query) -> Tuple[str, ...]:
    """Names of all scanned sets/associations/tables (with duplicates)."""
    names: List[str] = []
    for leaf in leaf_sources(query):
        if isinstance(leaf, SetScan):
            names.append(leaf.set_name)
        elif isinstance(leaf, AssociationScan):
            names.append(leaf.assoc_name)
        else:
            names.append(leaf.table_name)
    return tuple(names)
