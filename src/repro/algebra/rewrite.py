"""Condition rewrites used by the incremental algorithms.

Algorithm 2 (and the fragment-adaptation step of Section 3.1.3) rewrites
conditions when a new entity type ``E`` is added below ancestor ``P``:

* every ``IS OF (ONLY P)`` becomes ``IS OF (ONLY P) ∨ IS OF E`` — entities
  of the new type must keep flowing into views that stored exactly-P data,
  because the non-α attributes of E are mapped "like P";
* every ``IS OF F`` with F strictly between E and P is replaced by an
  expression that *excludes* E entities (they are mapped elsewhere):

      ⋁_{F' ∈ dp(F)} ( IS OF (ONLY F') ∨ ⋁_{F'' ∈ ch_p(F')} IS OF F'' )

  where ``dp(F)`` are the descendants of F inside the between-set ``p`` and
  ``ch_p(F')`` are the children of F' outside ``p ∪ {E}``.
"""

from __future__ import annotations

from typing import Callable, Sequence, Set, Tuple

from repro.algebra.conditions import (
    Condition,
    IsOf,
    IsOfOnly,
    or_,
)
from repro.algebra.queries import Query
from repro.edm.schema import ClientSchema


def widen_only_condition(parent: str, new_type: str) -> Callable[[Condition], Condition]:
    """Node transformer: ``IS OF (ONLY parent)`` → ``... ∨ IS OF new_type``."""

    def transformer(node: Condition) -> Condition:
        if isinstance(node, IsOfOnly) and node.type_name == parent:
            return or_(IsOfOnly(parent), IsOf(new_type))
        return node

    return transformer


def exclude_new_entity_condition(
    schema: ClientSchema,
    between: Sequence[str],
    new_type: str,
) -> Callable[[Condition], Condition]:
    """Node transformer implementing lines 10-15 of Algorithm 2.

    *between* is the set ``p`` (proper ancestors of the new type that are
    proper descendants of P).  Every ``IS OF F`` with ``F ∈ p`` is replaced
    by the disjunction above, which covers exactly the old extension of
    ``IS OF F`` minus entities of *new_type*.
    """
    between_set: Set[str] = set(between)

    def replacement_for(type_name: str) -> Condition:
        descendants_in_p: Tuple[str, ...] = tuple(
            t for t in schema.descendants_or_self(type_name) if t in between_set
        )
        disjuncts = []
        for inner in descendants_in_p:
            disjuncts.append(IsOfOnly(inner))
            for child in schema.children_of(inner):
                if child not in between_set and child != new_type:
                    disjuncts.append(IsOf(child))
        return or_(*disjuncts)

    def transformer(node: Condition) -> Condition:
        if isinstance(node, IsOf) and node.type_name in between_set:
            return replacement_for(node.type_name)
        return node

    return transformer


def narrow_table_scans(query: Query, table_name: str, condition: Condition) -> Query:
    """Wrap every scan of *table_name* in ``σ_condition`` (rebuilds the tree).

    Used when a table is retrofitted with a discriminator column: views
    that used to read the whole table must be narrowed to the rows that
    still belong to them (``disc IS NULL``).
    """
    from repro.algebra.queries import (
        FullOuterJoin,
        Join,
        LeftOuterJoin,
        Project,
        Select,
        TableScan,
        UnionAll,
    )

    def rebuild(node: Query) -> Query:
        if isinstance(node, TableScan):
            if node.table_name == table_name:
                return Select(node, condition)
            return node
        if isinstance(node, Select):
            return Select(rebuild(node.source), node.condition)
        if isinstance(node, Project):
            return Project(rebuild(node.source), node.items)
        if isinstance(node, Join):
            return Join(rebuild(node.left), rebuild(node.right), node.on)
        if isinstance(node, LeftOuterJoin):
            return LeftOuterJoin(rebuild(node.left), rebuild(node.right), node.on)
        if isinstance(node, FullOuterJoin):
            return FullOuterJoin(rebuild(node.left), rebuild(node.right), node.on)
        if isinstance(node, UnionAll):
            return UnionAll(tuple(rebuild(b) for b in node.branches))
        return node

    return rebuild(query)


def rewrite_query(query: Query, *transformers: Callable[[Condition], Condition]) -> Query:
    """Apply condition transformers (in order) to every Select in *query*."""
    result = query
    for transformer in transformers:
        result = result.transform_conditions(transformer)
    return result


def compose_transformers(
    *transformers: Callable[[Condition], Condition]
) -> Callable[[Condition], Condition]:
    def combined(node: Condition) -> Condition:
        for transformer in transformers:
            node = transformer(node)
        return node

    return combined
