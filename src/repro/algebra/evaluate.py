"""Evaluation of queries and views over concrete states.

Query views are evaluated over a :class:`StoreState`; update views over a
:class:`ClientState`.  Evaluation is set-oriented and naive (nested-loop
joins): it is only used on the small canonical states of the containment
checker, on test instances, and by the empirical roundtrip oracle.

Semantics notes:

* Joins are natural, on the *static* shared output columns of the two
  inputs.  Join columns with NULL on either side never match (SQL).
* Left/full outer joins pad the missing side's static columns with NULL.
* UNION ALL pads all branches to the union of their static columns with
  NULL — the explicit ``CAST (NULL AS ...)`` padding of Figure 2, applied
  implicitly.
* An entity-set scan yields one tuple per entity carrying exactly the
  attributes of its concrete type, plus a hidden type tag used by
  ``IS OF`` atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.conditions import TupleContext, evaluate_condition
from repro.algebra.queries import (
    AssociationScan,
    Const,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
)
from repro.edm.instances import ClientState
from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError
from repro.relational.instances import StoreState, row_map
from repro.relational.schema import StoreSchema

TYPE_TAG = "__type__"

RowDict = Dict[str, object]


class EvaluationContext:
    """Scan access + hierarchy knowledge for one side of the mapping."""

    def scan_rows(self, leaf: Query) -> List[RowDict]:
        raise NotImplementedError

    def scan_columns(self, leaf: Query) -> Tuple[str, ...]:
        raise NotImplementedError

    def is_subtype(self, concrete: str, ancestor: str) -> bool:
        raise NotImplementedError


class ClientContext(EvaluationContext):
    """Evaluates client-side queries (update-view bodies) over a ClientState."""

    def __init__(self, state: ClientState) -> None:
        self.state = state
        self.schema: ClientSchema = state.schema

    def scan_rows(self, leaf: Query) -> List[RowDict]:
        if isinstance(leaf, SetScan):
            rows = []
            for entity in self.state.entities(leaf.set_name):
                row = dict(entity.values)
                row[TYPE_TAG] = entity.concrete_type
                rows.append(row)
            return rows
        if isinstance(leaf, AssociationScan):
            association = self.schema.association(leaf.assoc_name)
            key1 = self.schema.key_of(association.end1.entity_type)
            key2 = self.schema.key_of(association.end2.entity_type)
            names = association.qualified_key_attrs(key1, key2)
            return [dict(zip(names, pair)) for pair in self.state.associations(leaf.assoc_name)]
        raise EvaluationError(f"client context cannot scan {leaf!r}")

    def scan_columns(self, leaf: Query) -> Tuple[str, ...]:
        if isinstance(leaf, SetScan):
            entity_set = self.schema.entity_set(leaf.set_name)
            columns: List[str] = []
            for type_name in self.schema.descendants_or_self(entity_set.root_type):
                for attr in self.schema.attribute_names_of(type_name):
                    if attr not in columns:
                        columns.append(attr)
            return tuple(columns)
        if isinstance(leaf, AssociationScan):
            association = self.schema.association(leaf.assoc_name)
            key1 = self.schema.key_of(association.end1.entity_type)
            key2 = self.schema.key_of(association.end2.entity_type)
            return association.qualified_key_attrs(key1, key2)
        raise EvaluationError(f"client context cannot scan {leaf!r}")

    def is_subtype(self, concrete: str, ancestor: str) -> bool:
        return ancestor in self.schema.ancestors_or_self(concrete)


class StoreContext(EvaluationContext):
    """Evaluates store-side queries (query-view bodies) over a StoreState."""

    def __init__(self, state: StoreState) -> None:
        self.state = state
        self.schema: StoreSchema = state.schema

    def scan_rows(self, leaf: Query) -> List[RowDict]:
        if isinstance(leaf, TableScan):
            # row_map reuses the memoized dict view of each row — table
            # scans sit under every view evaluation's inner loop.
            return [row_map(row) for row in self.state.rows(leaf.table_name)]
        raise EvaluationError(f"store context cannot scan {leaf!r}")

    def scan_columns(self, leaf: Query) -> Tuple[str, ...]:
        if isinstance(leaf, TableScan):
            return self.schema.table(leaf.table_name).column_names
        raise EvaluationError(f"store context cannot scan {leaf!r}")

    def is_subtype(self, concrete: str, ancestor: str) -> bool:
        raise EvaluationError("IS OF atoms cannot be evaluated on store tuples")


class _RowConditionContext(TupleContext):
    def __init__(self, row: Mapping[str, object], context: EvaluationContext) -> None:
        self._row = row
        self._context = context

    def attr_value(self, name: str) -> object:
        if name not in self._row:
            raise KeyError(name)
        return self._row[name]

    def is_of(self, type_name: str, only: bool) -> bool:
        concrete = self._row.get(TYPE_TAG)
        if concrete is None:
            raise EvaluationError("tuple has no type tag; IS OF is client-side only")
        if only:
            return concrete == type_name
        return self._context.is_subtype(str(concrete), type_name)


def output_columns(query: Query, context: EvaluationContext) -> Tuple[str, ...]:
    """Static output columns of *query* (excluding the hidden type tag)."""
    if isinstance(query, (SetScan, AssociationScan, TableScan)):
        return context.scan_columns(query)
    if isinstance(query, Select):
        return output_columns(query.source, context)
    if isinstance(query, Project):
        return query.output_names
    if isinstance(query, (Join, LeftOuterJoin, FullOuterJoin)):
        left = output_columns(query.left, context)
        right = output_columns(query.right, context)
        return left + tuple(c for c in right if c not in left)
    if isinstance(query, UnionAll):
        columns: List[str] = []
        for branch in query.branches:
            for column in output_columns(branch, context):
                if column not in columns:
                    columns.append(column)
        return tuple(columns)
    raise EvaluationError(f"unknown query node {query!r}")


def evaluate_query(query: Query, context: EvaluationContext) -> List[RowDict]:
    """Evaluate *query*, returning de-duplicated rows (set semantics)."""
    rows = _evaluate(query, context)
    seen = set()
    unique: List[RowDict] = []
    for row in rows:
        key = tuple(sorted((k, v) for k, v in row.items() if k != TYPE_TAG))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def evaluate_query_bag(query: Query, context: EvaluationContext) -> List[RowDict]:
    """Bag-semantics evaluation (no dedup).

    The incremental write path (:mod:`repro.ivm`) maintains per-row
    multiplicity counts whose support must equal :func:`evaluate_query`'s
    deduplicated output; seeding them from the raw bag keeps both paths
    reading the same operator semantics.
    """
    return _evaluate(query, context)


def _evaluate(query: Query, context: EvaluationContext) -> List[RowDict]:
    if isinstance(query, (SetScan, AssociationScan, TableScan)):
        return context.scan_rows(query)

    if isinstance(query, Select):
        rows = _evaluate(query.source, context)
        return [
            row
            for row in rows
            if evaluate_condition(query.condition, _RowConditionContext(row, context))
        ]

    if isinstance(query, Project):
        rows = _evaluate(query.source, context)
        projected = []
        for row in rows:
            out: RowDict = {}
            for item in query.items:
                if isinstance(item.expr, Const):
                    out[item.output] = item.expr.value
                else:
                    name = item.expr.name
                    if name not in row:
                        raise EvaluationError(
                            f"projection references missing column {name!r} "
                            f"(row has {sorted(k for k in row if k != TYPE_TAG)})"
                        )
                    out[item.output] = row[name]
            projected.append(out)
        return projected

    if isinstance(query, Join):
        return _join(query, context, left_outer=False, full_outer=False)
    if isinstance(query, LeftOuterJoin):
        return _join(query, context, left_outer=True, full_outer=False)
    if isinstance(query, FullOuterJoin):
        return _join(query, context, left_outer=True, full_outer=True)

    if isinstance(query, UnionAll):
        all_columns = output_columns(query, context)
        rows: List[RowDict] = []
        for branch in query.branches:
            for row in _evaluate(branch, context):
                padded = {column: row.get(column) for column in all_columns}
                rows.append(padded)
        return rows

    raise EvaluationError(f"unknown query node {query!r}")


def _join(query, context: EvaluationContext, left_outer: bool, full_outer: bool) -> List[RowDict]:
    left_rows = _evaluate(query.left, context)
    right_rows = _evaluate(query.right, context)
    spec = join_spec(
        output_columns(query.left, context),
        output_columns(query.right, context),
        query.on,
    )
    return join_rows(
        left_rows, right_rows, spec, left_pad=left_outer, right_pad=full_outer
    )


# ---------------------------------------------------------------------------
# The join kernel, shared by the interpreter and the compiled physical
# plans (:mod:`repro.backend.physical`).  Keeping one implementation of
# the natural-join / COALESCE / NULL-padding semantics is what licenses
# the compiled path's byte-identical-answers guarantee.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JoinSpec:
    """Static column structure of one natural join, computed once."""

    left_columns: Tuple[str, ...]
    shared: Tuple[str, ...]
    join_columns: Tuple[str, ...]
    #: shared non-join columns, merged by COALESCE(left, right)
    coalesced: Tuple[str, ...]
    left_only: Tuple[str, ...]
    right_only: Tuple[str, ...]


def join_spec(
    left_columns: Tuple[str, ...],
    right_columns: Tuple[str, ...],
    on: Optional[Tuple[str, ...]],
) -> JoinSpec:
    shared = tuple(c for c in left_columns if c in right_columns)
    if on is not None:
        join_columns = on
        missing = [c for c in join_columns if c not in shared]
        if missing:
            raise EvaluationError(
                f"join columns {missing} are not shared by both inputs"
            )
    else:
        join_columns = shared
    return JoinSpec(
        left_columns=left_columns,
        shared=shared,
        join_columns=join_columns,
        coalesced=tuple(c for c in shared if c not in join_columns),
        left_only=tuple(c for c in left_columns if c not in shared),
        right_only=tuple(c for c in right_columns if c not in shared),
    )


def join_key(
    row: RowDict, join_columns: Tuple[str, ...]
) -> Optional[Tuple[object, ...]]:
    """The row's join-key tuple, or None if any component is NULL."""
    values = tuple(row.get(c) for c in join_columns)
    if any(v is None for v in values):
        return None  # NULL never joins
    return values


def build_join_index(
    rows: Sequence[RowDict], join_columns: Tuple[str, ...]
) -> Dict[Tuple[object, ...], List[RowDict]]:
    """Hash rows by join key; NULL-keyed rows are left out (never match)."""
    index: Dict[Tuple[object, ...], List[RowDict]] = {}
    for row in rows:
        key = join_key(row, join_columns)
        if key is not None:
            index.setdefault(key, []).append(row)
    return index


def join_rows(
    left_rows: Sequence[RowDict],
    right_rows: Sequence[RowDict],
    spec: JoinSpec,
    left_pad: bool,
    right_pad: bool,
    index: Optional[Dict[Tuple[object, ...], List[RowDict]]] = None,
) -> List[RowDict]:
    """Join two row lists under *spec*.

    ``left_pad`` emits unmatched left rows with NULL right-only columns
    (left outer); ``right_pad`` emits unmatched right rows with NULL
    left-only columns (the full-outer tail).  A prebuilt *index* of the
    right rows by join key may be supplied (compiled plans reuse backend
    indexes); it must have been built by :func:`build_join_index` over
    exactly ``right_rows``.
    """
    join_columns = spec.join_columns
    if index is None:
        index = build_join_index(right_rows, join_columns)
    left_columns = spec.left_columns
    coalesced = spec.coalesced
    right_only = spec.right_only
    result: List[RowDict] = []
    matched_right: set = set()
    for left_row in left_rows:
        key = join_key(left_row, join_columns)
        matches = index.get(key, ()) if key is not None else ()
        if matches:
            for right_row in matches:
                combined = {c: left_row.get(c) for c in left_columns}
                for column in coalesced:
                    if combined.get(column) is None:
                        combined[column] = right_row.get(column)
                for column in right_only:
                    combined[column] = right_row.get(column)
                result.append(combined)
            matched_right.add(key)
        elif left_pad:
            combined = {c: left_row.get(c) for c in left_columns}
            for column in right_only:
                combined[column] = None
            result.append(combined)
    if right_pad:
        for right_row in right_rows:
            key = join_key(right_row, join_columns)
            if key is not None and key in matched_right:
                continue
            combined = {c: None for c in spec.left_only}
            for column in spec.shared:
                combined[column] = right_row.get(column)
            for column in right_only:
                combined[column] = right_row.get(column)
            result.append(combined)
    return result
