"""Structural condition simplification.

Purely syntactic: flattening, TRUE/FALSE absorption, duplicate-operand
removal, double-negation elimination.  *Semantic* decisions (tautology,
satisfiability, implication over the type hierarchy and attribute domains)
live in :mod:`repro.containment` — the paper's tautology check for
``AddEntityPart`` coverage (Section 3.3) needs domain knowledge, e.g. that
``gender = M ∨ gender = F`` is a tautology because the domain is {M, F}.
"""

from __future__ import annotations

from typing import List

from repro.algebra.conditions import (
    And,
    Condition,
    FALSE,
    FalseCond,
    Not,
    Or,
    TRUE,
    TrueCond,
    and_,
    or_,
)


# Hash-consing makes conditions cheap dict keys (identity-first equality,
# precomputed hash), so simplification is memoized across the whole
# process: rewrites re-simplify the same shared subtrees constantly.
_SIMPLIFY_MEMO: dict = {}
_SIMPLIFY_MEMO_LIMIT = 4096


def simplify(condition: Condition) -> Condition:
    """Return a structurally simplified, semantically equivalent condition."""
    cached = _SIMPLIFY_MEMO.get(condition)
    if cached is not None:
        return cached
    result = _simplify(condition)
    if len(_SIMPLIFY_MEMO) >= _SIMPLIFY_MEMO_LIMIT:
        _SIMPLIFY_MEMO.clear()
    _SIMPLIFY_MEMO[condition] = result
    return result


def _simplify(condition: Condition) -> Condition:
    if isinstance(condition, And):
        operands = _dedup([simplify(op) for op in condition.operands])
        if any(isinstance(op, FalseCond) for op in operands):
            return FALSE
        operands = [op for op in operands if not isinstance(op, TrueCond)]
        return and_(*operands) if operands else TRUE
    if isinstance(condition, Or):
        operands = _dedup([simplify(op) for op in condition.operands])
        if any(isinstance(op, TrueCond) for op in operands):
            return TRUE
        operands = [op for op in operands if not isinstance(op, FalseCond)]
        return or_(*operands) if operands else FALSE
    if isinstance(condition, Not):
        inner = simplify(condition.operand)
        if isinstance(inner, Not):
            return inner.operand
        if isinstance(inner, TrueCond):
            return FALSE
        if isinstance(inner, FalseCond):
            return TRUE
        return Not(inner)
    return condition


def _dedup(operands: List[Condition]) -> List[Condition]:
    seen = set()
    result = []
    for operand in operands:
        if operand not in seen:
            seen.add(operand)
            result.append(operand)
    return result
