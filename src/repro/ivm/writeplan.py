"""Delta propagation through compiled update views.

Every update view is ``(Q_T | τ_T)`` with ``Q_T`` built from exactly four
operators over client scans — project, select, union-all and the
PK-keyed left outer join chaining association fragments onto the entity
union.  For each operator there is a *delta rule* that transforms a
signed stream of changed input rows into a signed stream of changed
output rows, mirroring the bag semantics of
:func:`repro.algebra.evaluate._evaluate` exactly:

* scan      — the recorded net changes themselves (±entity rows, ±pairs);
* select    — filter each signed row by the condition;
* project   — map each signed row through the projection items;
* union-all — concatenate branch deltas, NULL-padded to the union width;
* ⟕ on k    — ``ΔL ⟕ R_new``  (each signed left row matched-or-padded
  against the new right side) **plus** ``L_old ⋈ ΔR`` with pad
  transitions: at a join key whose right match count crosses 0↔positive,
  the old left rows at that key lose or gain their NULL-padded row.

Because the store rows of a table are exactly the *support* of the bag
``τ_T(Q_T(c))`` (the whole-state save dedups the same construction), a
per-table multiplicity count table turns the signed stream into minimal
DML: a row whose count rises from zero is an INSERT, one whose count
falls to zero is a DELETE, and :func:`repro.query.dml.classify_rows`
pairs them into UPDATEs identically to a whole-state diff.

Plans are lowered once per (view, delta shape) — the shape being the set
of scanned sources with activity, so e.g. an association-only delta skips
the entity union entirely — and cached in :class:`WriteplanCache` under
the same delta-scoped invalidation discipline as the read-side
:class:`~repro.query.plancache.PlanCache`.

Any query shape or multiplicity invariant the rules cannot maintain
raises :class:`~repro.errors.IvmError`; the engine then falls back to a
whole-state save, which is always correct.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.conditions import evaluate_condition
from repro.algebra.evaluate import (
    TYPE_TAG,
    ClientContext,
    RowDict,
    _RowConditionContext,
    evaluate_query_bag,
    join_key,
    join_rows,
    join_spec,
    output_columns,
)
from repro.algebra.queries import (
    AssociationScan,
    Const,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    SetScan,
    UnionAll,
)
from repro.containment.cache import client_slice_tokens, fingerprint
from repro.edm.instances import ClientState, Entity
from repro.errors import EvaluationError, IvmError
from repro.ivm.clientdelta import ClientDelta
from repro.query.dml import StoreDelta, classify_rows
from repro.relational.instances import Row, row_from_mapping

Signed = Tuple[int, RowDict]
Probe = Callable[["_Runtime", Tuple[object, ...], bool], List[RowDict]]


class _Runtime:
    """Everything a lowered plan reads at save time."""

    __slots__ = ("delta", "state", "context", "fallback_probes")

    def __init__(self, delta: ClientDelta, state: ClientState) -> None:
        self.delta = delta
        #: the *new* client state (the delta has already been applied)
        self.state = state
        self.context = ClientContext(state)
        self.fallback_probes = 0


def _matches(row: RowDict, columns: Tuple[str, ...], values: Tuple[object, ...]) -> bool:
    return all(row.get(c) == v for c, v in zip(columns, values))


def _entity_row(entity: Entity) -> RowDict:
    row = dict(entity.values)
    row[TYPE_TAG] = entity.concrete_type
    return row


def _never_probe(rt: "_Runtime", values: Tuple[object, ...], old: bool) -> List[RowDict]:
    return []


class _Node:
    """One lowered operator: a delta rule plus keyed-probe compilation."""

    __slots__ = ("columns", "active")

    def delta(self, rt: _Runtime) -> List[Signed]:
        raise NotImplementedError

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        """A probe returning the node's (old or new) rows matching the
        given column constraints — the O(|delta|) replacement for
        re-evaluating the whole subtree."""
        raise NotImplementedError


class _SetScanNode(_Node):
    __slots__ = ("set_name", "key_attrs")

    def __init__(self, set_name: str, key_attrs: Tuple[str, ...],
                 columns: Tuple[str, ...], active: bool) -> None:
        self.set_name = set_name
        self.key_attrs = key_attrs
        self.columns = columns
        self.active = active

    def delta(self, rt: _Runtime) -> List[Signed]:
        out: List[Signed] = []
        for old, new in rt.delta.entity_changes(self.set_name).values():
            if old is not None:
                out.append((-1, _entity_row(old)))
            if new is not None:
                out.append((+1, _entity_row(new)))
        return out

    def _old_entities(self, rt: _Runtime):
        changes = rt.delta.entity_changes(self.set_name)
        for entity in rt.state.entities(self.set_name):
            if entity.key_tuple(self.key_attrs) not in changes:
                yield entity
        for old, _new in changes.values():
            if old is not None:
                yield old

    def _entity_at(self, rt: _Runtime, key: Tuple[object, ...], old: bool) -> Optional[Entity]:
        if old:
            changes = rt.delta.entity_changes(self.set_name)
            if key in changes:
                return changes[key][0]
        return rt.state.entity_by_key(self.set_name, key)

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        scan_columns = set(self.columns)
        if any(c not in scan_columns for c in columns):
            return _never_probe  # no row of this scan carries the column
        key_positions = {a: i for i, a in enumerate(columns)}
        if all(a in key_positions for a in self.key_attrs):
            key_attrs = self.key_attrs

            def keyed(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
                key = tuple(values[key_positions[a]] for a in key_attrs)
                entity = self._entity_at(rt, key, old)
                if entity is None:
                    return []
                row = _entity_row(entity)
                return [row] if _matches(row, columns, values) else []

            return keyed

        def scan(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            rt.fallback_probes += 1
            entities = self._old_entities(rt) if old else rt.state.entities(self.set_name)
            rows = (_entity_row(e) for e in entities)
            return [r for r in rows if _matches(r, columns, values)]

        return scan


class _AssocScanNode(_Node):
    __slots__ = ("assoc_name", "names", "key1_len")

    def __init__(self, assoc_name: str, names: Tuple[str, ...], key1_len: int,
                 active: bool) -> None:
        self.assoc_name = assoc_name
        self.names = names
        self.key1_len = key1_len
        self.columns = names
        self.active = active

    def _row(self, pair: Tuple[object, ...]) -> RowDict:
        return dict(zip(self.names, pair))

    def delta(self, rt: _Runtime) -> List[Signed]:
        return [
            (sign, self._row(pair))
            for pair, sign in rt.delta.association_changes(self.assoc_name).items()
        ]

    def _old_pairs(self, rt: _Runtime, new_pairs, end: Optional[int],
                   end_key: Tuple[object, ...]):
        """Adjust a new-side pair listing back to the old side: drop net
        inserts, add back net deletes (restricted to the probed end)."""
        changes = rt.delta.association_changes(self.assoc_name)
        pairs = [p for p in new_pairs if changes.get(p, 0) != 1]
        w = self.key1_len
        for pair, sign in changes.items():
            if sign != -1:
                continue
            if end == 0 and pair[:w] != end_key:
                continue
            if end == 1 and pair[w:] != end_key:
                continue
            pairs.append(pair)
        return pairs

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        known = set(self.names)
        if any(c not in known for c in columns):
            return _never_probe
        positions = {n: i for i, n in enumerate(columns)}
        end1_names = self.names[: self.key1_len]
        end2_names = self.names[self.key1_len:]
        end: Optional[int] = None
        end_names: Tuple[str, ...] = ()
        if all(n in positions for n in end1_names):
            end, end_names = 0, end1_names
        elif all(n in positions for n in end2_names):
            end, end_names = 1, end2_names

        def probe(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            if end is None:
                rt.fallback_probes += 1
                new_pairs = rt.state.associations(self.assoc_name)
                end_key: Tuple[object, ...] = ()
            else:
                end_key = tuple(values[positions[n]] for n in end_names)
                new_pairs = rt.state.associations_with_end(self.assoc_name, end, end_key)
            pairs = self._old_pairs(rt, new_pairs, end, end_key) if old else new_pairs
            rows = (self._row(p) for p in pairs)
            return [r for r in rows if _matches(r, columns, values)]

        return probe


class _SelectNode(_Node):
    __slots__ = ("source", "condition")

    def __init__(self, source: _Node, condition) -> None:
        self.source = source
        self.condition = condition
        self.columns = source.columns
        self.active = source.active

    def _keep(self, rt: _Runtime, row: RowDict) -> bool:
        return evaluate_condition(self.condition, _RowConditionContext(row, rt.context))

    def delta(self, rt: _Runtime) -> List[Signed]:
        return [(s, r) for s, r in self.source.delta(rt) if self._keep(rt, r)]

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        source_probe = self.source.make_probe(columns)

        def probe(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            return [r for r in source_probe(rt, values, old) if self._keep(rt, r)]

        return probe


class _ProjectNode(_Node):
    __slots__ = ("source", "items")

    def __init__(self, source: _Node, items) -> None:
        self.source = source
        self.items = items
        self.columns = tuple(item.output for item in items)
        self.active = source.active

    def _project(self, row: RowDict) -> RowDict:
        out: RowDict = {}
        for item in self.items:
            if isinstance(item.expr, Const):
                out[item.output] = item.expr.value
            else:
                name = item.expr.name
                if name not in row:
                    raise EvaluationError(
                        f"projection references missing column {name!r} "
                        f"(row has {sorted(k for k in row if k != TYPE_TAG)})"
                    )
                out[item.output] = row[name]
        return out

    def delta(self, rt: _Runtime) -> List[Signed]:
        return [(s, self._project(r)) for s, r in self.source.delta(rt)]

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        by_output = {item.output: item for item in self.items}
        pinned: List[Tuple[int, object]] = []  # probe slot must equal this Const
        source_columns: List[str] = []
        source_slots: List[int] = []
        for i, column in enumerate(columns):
            item = by_output.get(column)
            if item is None:
                return _never_probe  # projected rows never carry the column
            if isinstance(item.expr, Const):
                pinned.append((i, item.expr.value))
            else:
                source_columns.append(item.expr.name)
                source_slots.append(i)
        source_probe = self.source.make_probe(tuple(source_columns))

        def probe(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            for i, pin in pinned:
                if values[i] != pin:
                    return []
            sub_values = tuple(values[i] for i in source_slots)
            rows = (self._project(r) for r in source_probe(rt, sub_values, old))
            return [r for r in rows if _matches(r, columns, values)]

        return probe


class _UnionNode(_Node):
    __slots__ = ("branches",)

    def __init__(self, branches: Tuple[_Node, ...], all_columns: Tuple[str, ...]) -> None:
        self.branches = branches
        self.columns = all_columns
        self.active = any(b.active for b in branches)

    def _pad(self, row: RowDict) -> RowDict:
        return {column: row.get(column) for column in self.columns}

    def delta(self, rt: _Runtime) -> List[Signed]:
        out: List[Signed] = []
        for branch in self.branches:
            if not branch.active:
                continue
            out.extend((s, self._pad(r)) for s, r in branch.delta(rt))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        branch_probes = [b.make_probe(columns) for b in self.branches]

        def probe(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            out: List[RowDict] = []
            for bp in branch_probes:
                padded = (self._pad(r) for r in bp(rt, values, old))
                out.extend(r for r in padded if _matches(r, columns, values))
            return out

        return probe


class _LojNode(_Node):
    __slots__ = ("left", "right", "on", "spec", "left_probe", "right_probe")

    def __init__(self, left: _Node, right: _Node, on: Tuple[str, ...]) -> None:
        self.left = left
        self.right = right
        self.on = on
        self.spec = join_spec(left.columns, right.columns, on)
        self.left_probe = left.make_probe(on)
        self.right_probe = right.make_probe(on)
        self.columns = left.columns + tuple(
            c for c in right.columns if c not in left.columns
        )
        self.active = left.active or right.active

    def delta(self, rt: _Runtime) -> List[Signed]:
        out: List[Signed] = []
        spec = self.spec
        if self.left.active:
            # ΔL ⟕ R_new: each signed left row matches or NULL-pads
            for sign, lrow in self.left.delta(rt):
                key = join_key(lrow, self.on)
                matches = self.right_probe(rt, key, False) if key is not None else []
                for row in join_rows([lrow], matches, spec, True, False):
                    out.append((sign, row))
        if self.right.active:
            by_key: Dict[Tuple[object, ...], List[Signed]] = {}
            for sign, rrow in self.right.delta(rt):
                key = join_key(rrow, self.on)
                if key is None:
                    continue  # NULL keys never join and LOJ never right-pads
                by_key.setdefault(key, []).append((sign, rrow))
            for key, signed_rows in by_key.items():
                # L_old ⋈ ΔR (term one already covered ΔL against R_new)
                left_old = self.left_probe(rt, key, True)
                if not left_old:
                    continue
                for sign, rrow in signed_rows:
                    for row in join_rows(left_old, [rrow], spec, False, False):
                        out.append((sign, row))
                # pad transitions: right match count crossing 0 ↔ positive
                m_new = len(self.right_probe(rt, key, False))
                m_old = m_new - sum(s for s, _ in signed_rows)
                if m_old < 0:
                    raise IvmError(
                        f"negative right-side multiplicity at join key {key!r}"
                    )
                pad_sign = 0
                if m_old == 0 and m_new > 0:
                    pad_sign = -1  # old left rows lose their NULL-padded row
                elif m_old > 0 and m_new == 0:
                    pad_sign = +1  # old left rows regain the NULL-padded row
                if pad_sign:
                    for row in join_rows(left_old, [], spec, True, False):
                        out.append((pad_sign, row))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        if tuple(columns) != tuple(self.on):
            raise IvmError(
                f"left-outer-join probe on {columns!r} does not match join key {self.on!r}"
            )

        def probe(rt: _Runtime, values: Tuple[object, ...], old: bool) -> List[RowDict]:
            left_rows = self.left_probe(rt, values, old)
            if not left_rows:
                return []
            right_rows = self.right_probe(rt, values, old)
            return join_rows(left_rows, right_rows, self.spec, True, False)

        return probe


def _compile(query: Query, context: ClientContext, shape: FrozenSet[str]) -> _Node:
    schema = context.schema
    if isinstance(query, SetScan):
        entity_set = schema.entity_set(query.set_name)
        return _SetScanNode(
            query.set_name,
            tuple(schema.key_of(entity_set.root_type)),
            context.scan_columns(query),
            query.set_name in shape,
        )
    if isinstance(query, AssociationScan):
        association = schema.association(query.assoc_name)
        key1 = schema.key_of(association.end1.entity_type)
        return _AssocScanNode(
            query.assoc_name,
            context.scan_columns(query),
            len(key1),
            query.assoc_name in shape,
        )
    if isinstance(query, Select):
        return _SelectNode(_compile(query.source, context, shape), query.condition)
    if isinstance(query, Project):
        return _ProjectNode(_compile(query.source, context, shape), query.items)
    if isinstance(query, UnionAll):
        return _UnionNode(
            tuple(_compile(b, context, shape) for b in query.branches),
            output_columns(query, context),
        )
    if isinstance(query, LeftOuterJoin):
        if query.on is None:
            raise IvmError("cannot lower a left outer join without an explicit key")
        return _LojNode(
            _compile(query.left, context, shape),
            _compile(query.right, context, shape),
            tuple(query.on),
        )
    raise IvmError(f"no delta rule for query node {type(query).__name__}")


@dataclass
class Writeplan:
    """One lowered (view, delta-shape) pair: signed-row propagation plus
    the row constructor, producing net store-row multiplicity changes."""

    table_name: str
    shape: FrozenSet[str]
    root: _Node
    constructor: object

    def run(self, rt: _Runtime) -> Dict[Row, int]:
        net: Dict[Row, int] = {}
        for sign, row in self.root.delta(rt):
            out = row_from_mapping(self.constructor.construct(row))
            total = net.get(out, 0) + sign
            if total:
                net[out] = total
            else:
                net.pop(out, None)
        return net


def compile_writeplan(view, schema, shape: FrozenSet[str]) -> Writeplan:
    """Lower one update view's delta rules for one delta shape."""
    context = ClientContext(ClientState(schema))  # schema-only: columns are static
    root = _compile(view.query, context, shape)
    return Writeplan(view.table_name, shape, root, view.constructor)


def _scanned_sources(view) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(entity sets, associations) the view's query scans."""
    sets: List[str] = []
    assocs: List[str] = []
    for node in view.query.walk():
        if isinstance(node, SetScan) and node.set_name not in sets:
            sets.append(node.set_name)
        elif isinstance(node, AssociationScan) and node.assoc_name not in assocs:
            assocs.append(node.assoc_name)
    return tuple(sets), tuple(assocs)


@dataclass(frozen=True)
class WriteplanCacheStats:
    hits: int
    misses: int
    compiled: int
    invalidations: int
    entries: int

    def __str__(self) -> str:
        return (
            f"writeplans: {self.hits} hits / {self.misses} misses, "
            f"{self.compiled} compiled, {self.invalidations} invalidated, "
            f"{self.entries} cached"
        )


class WriteplanCache:
    """LRU of lowered writeplans keyed by (table, view fingerprint, shape).

    The fingerprint covers the view structure *and* the client-schema
    slice its scans read (:func:`client_slice_tokens`), so any evolution
    visible to the plan changes the key; :meth:`invalidate` additionally
    evicts delta-scoped — exactly the entries whose table or scanned
    sources a :class:`MappingDelta`'s touched neighborhood reaches —
    mirroring the read-side :class:`~repro.query.plancache.PlanCache`
    discipline.  Data-only writes never invalidate writeplans.
    """

    def __init__(self, max_plans: int = 256) -> None:
        self.max_plans = max_plans
        #: key -> (plan, scanned sources ∪ {table})
        self._plans: "OrderedDict[tuple, Tuple[Writeplan, FrozenSet[str]]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.compiled = 0
        self.invalidations = 0

    def plan_for(self, model, view, shape: FrozenSet[str]) -> Writeplan:
        schema = model.client_schema
        sets, assocs = _scanned_sources(view)
        slice_fp = fingerprint(
            view, client_slice_tokens(schema, sets=sorted(sets), assocs=sorted(assocs))
        )
        key = (view.table_name, slice_fp, shape)
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return entry[0]
        plan = compile_writeplan(view, schema, shape)  # may raise IvmError
        sources = frozenset(sets) | frozenset(assocs)
        with self._lock:
            self.misses += 1
            self.compiled += 1
            self._plans[key] = (plan, sources)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan

    def invalidate(self, delta, mapping) -> int:
        """Evict exactly the writeplans a :class:`MappingDelta` can stale."""
        raw = delta.touched()
        hood = delta.touched_neighborhood(mapping)
        # the resolved Neighborhood names sets and tables only; raw
        # touched() is where association names surface
        touched_sources = set(raw.sets) | set(hood.sets) | set(raw.assocs)
        touched_tables = set(raw.tables) | set(hood.tables)
        schema = mapping.client_schema if hasattr(mapping, "client_schema") else mapping
        evicted = 0
        with self._lock:
            for key in list(self._plans):
                table_name = key[0]
                _plan, sources = self._plans[key]
                stale = table_name in touched_tables or bool(sources & touched_sources)
                if not stale:
                    # raw names of dropped components no longer resolve
                    for name in sources:
                        if not (
                            schema.has_entity_set(name) or schema.has_association(name)
                        ):
                            stale = True
                            break
                if stale:
                    del self._plans[key]
                    evicted += 1
            self.invalidations += evicted
        return evicted

    def clear(self) -> int:
        with self._lock:
            evicted = len(self._plans)
            self._plans.clear()
            self.invalidations += evicted
        return evicted

    def stats(self) -> WriteplanCacheStats:
        with self._lock:
            return WriteplanCacheStats(
                hits=self.hits,
                misses=self.misses,
                compiled=self.compiled,
                invalidations=self.invalidations,
                entries=len(self._plans),
            )


class IncrementalWriteState:
    """The engine's cached object view plus per-table multiplicity counts.

    ``counts[table][row]`` is the bag multiplicity of *row* in the update
    view's output over ``client_state``; its support is exactly the
    table's store rows.  Counts are committed only after the backend
    accepted the DML, so a failed save leaves them untouched.
    """

    def __init__(self, client_state: ClientState, counts: Dict[str, Dict[Row, int]]) -> None:
        self.client_state = client_state
        self.counts = counts

    def commit(self, pending: List[Tuple[str, Dict[Row, int]]]) -> None:
        for table_name, net in pending:
            per = self.counts.setdefault(table_name, {})
            for row, d in net.items():
                total = per.get(row, 0) + d
                if total:
                    per[row] = total
                else:
                    per.pop(row, None)


def seed_counts(model, state: ClientState) -> Dict[str, Dict[Row, int]]:
    """Bag-evaluate every update view over *state* — the one O(n) pass
    that buys O(|delta|) for every subsequent incremental save."""
    context = ClientContext(state)
    counts: Dict[str, Dict[Row, int]] = {}
    for table_name, view in model.views.update_views.items():
        per: Dict[Row, int] = {}
        for row in evaluate_query_bag(view.query, context):
            out = row_from_mapping(view.constructor.construct(row))
            per[out] = per.get(out, 0) + 1
        counts[table_name] = per
    return counts


def push_client_delta(
    model,
    delta: ClientDelta,
    inc_state: IncrementalWriteState,
    cache: WriteplanCache,
) -> Tuple[StoreDelta, List[Tuple[str, Dict[Row, int]]]]:
    """Compile *delta* into store DML via the update views.

    Returns the :class:`StoreDelta` plus the pending per-table count
    updates; the caller commits the counts (``inc_state.commit``) only
    after the backend accepted the DML.  Views scanning none of the
    delta's sources are skipped entirely — the O(|delta|) win.
    """
    rt = _Runtime(delta, inc_state.client_state)
    active_sources = delta.sources()
    store_delta = StoreDelta()
    pending: List[Tuple[str, Dict[Row, int]]] = []
    for table_name in sorted(model.views.update_views):
        view = model.views.update_views[table_name]
        sets, assocs = _scanned_sources(view)
        shape = frozenset((set(sets) | set(assocs)) & active_sources)
        if not shape:
            continue
        plan = cache.plan_for(model, view, shape)
        net = plan.run(rt)
        if not net:
            continue
        counts = inc_state.counts.get(table_name, {})
        fresh: List[Row] = []
        gone: List[Row] = []
        for row, d in net.items():
            before = counts.get(row, 0)
            after = before + d
            if after < 0:
                raise IvmError(
                    f"negative multiplicity for a row of {table_name!r}"
                )
            if before == 0 and after > 0:
                fresh.append(row)
            elif before > 0 and after == 0:
                gone.append(row)
        table_delta = classify_rows(model.store_schema.table(table_name), fresh, gone)
        if not table_delta.empty:
            store_delta.tables[table_name] = table_delta
        pending.append((table_name, net))
    return store_delta, pending
