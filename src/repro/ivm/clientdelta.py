"""Client-side deltas: what changed between two object views.

Two layers:

* :class:`ClientDelta` — the *net* change per entity key / association
  pair, as recorded live by :meth:`ClientState.record_into`.  This is
  what the delta rules in :mod:`repro.ivm.writeplan` consume: an entity
  touched twice collapses to one ``(old, new)`` transition, inverse
  pairs (insert;delete, add;remove, update back to the original value)
  collapse to nothing.
* :class:`DeltaScript` — an ordered list of mutation *operations*, the
  wire form a remote client ships to the service's ``save_delta`` verb.
  Replaying a script onto the server's cached client state (with
  recording on) yields the net :class:`ClientDelta`, resolving old
  entity values the client never had to send.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.edm.instances import ClientState, Entity
from repro.errors import SchemaError

Key = Tuple[object, ...]


class ClientDelta:
    """Net client-state change, keyed for O(1) delta-rule lookups.

    ``entities[set][key]`` is a two-slot ``[old, new]`` list (``None`` =
    absent on that side); ``associations[assoc][pair]`` is a signed count
    in ``{-1, +1}``.  Entries whose sides agree are dropped eagerly, so
    ``empty`` really means "saving this is a no-op".
    """

    def __init__(self) -> None:
        self.entities: Dict[str, Dict[Key, List[Optional[Entity]]]] = {}
        self.associations: Dict[str, Dict[Key, int]] = {}

    # -- the ClientState recording protocol -----------------------------
    def record_entity(
        self,
        set_name: str,
        key: Key,
        old: Optional[Entity],
        new: Optional[Entity],
    ) -> None:
        per_set = self.entities.setdefault(set_name, {})
        entry = per_set.get(key)
        if entry is None:
            entry = per_set[key] = [old, new]
        else:
            entry[1] = new
        if entry[0] == entry[1]:  # inverse pair / faithful rewrite: no net change
            del per_set[key]

    def record_association(self, assoc_name: str, pair: Key, sign: int) -> None:
        per_assoc = self.associations.setdefault(assoc_name, {})
        net = per_assoc.get(pair, 0) + sign
        if net:
            per_assoc[pair] = net
        else:
            per_assoc.pop(pair, None)

    # -- delta-rule access ----------------------------------------------
    def entity_changes(self, set_name: str) -> Dict[Key, List[Optional[Entity]]]:
        return self.entities.get(set_name) or {}

    def association_changes(self, assoc_name: str) -> Dict[Key, int]:
        return self.associations.get(assoc_name) or {}

    def sources(self) -> FrozenSet[str]:
        """Entity-set and association names with net activity — the
        delta *shape* writeplans are specialized for."""
        return frozenset(
            [name for name, per in self.entities.items() if per]
            + [name for name, per in self.associations.items() if per]
        )

    @property
    def empty(self) -> bool:
        return not self.sources()

    def op_count(self) -> int:
        return sum(len(per) for per in self.entities.values()) + sum(
            len(per) for per in self.associations.values()
        )

    def __str__(self) -> str:
        parts = []
        for name, per in sorted(self.entities.items()):
            if per:
                parts.append(f"{name}:{len(per)}")
        for name, per in sorted(self.associations.items()):
            if per:
                parts.append(f"{name}:{len(per)}")
        return f"ClientDelta({', '.join(parts)})"


@dataclass(frozen=True)
class EntityOp:
    """One entity mutation: ``insert``/``update`` carry the entity,
    ``delete`` carries the key."""

    op: str
    set_name: str
    entity: Optional[Entity] = None
    key: Optional[Key] = None


@dataclass(frozen=True)
class AssociationOp:
    """One association mutation (``insert`` or ``delete`` of a pair)."""

    op: str
    assoc_name: str
    key1: Key = ()
    key2: Key = ()


@dataclass(frozen=True)
class DeltaScript:
    """An ordered mutation script — the wire form of a client delta."""

    ops: Tuple[object, ...] = field(default=())

    def apply_to(self, state: ClientState) -> None:
        """Replay every operation onto *state* in order.

        The caller decides whether *state* is recording; a raising replay
        may leave *state* partially mutated (the engine resyncs then).
        """
        for op in self.ops:
            if isinstance(op, EntityOp):
                if op.op == "insert":
                    state.add_entity(op.set_name, op.entity)
                elif op.op == "update":
                    state.update_entity(op.set_name, op.entity)
                elif op.op == "delete":
                    state.remove_entity(op.set_name, op.key)
                else:
                    raise SchemaError(f"unknown entity delta op {op.op!r}")
            elif isinstance(op, AssociationOp):
                if op.op == "insert":
                    state.add_association(op.assoc_name, op.key1, op.key2)
                elif op.op == "delete":
                    state.remove_association(op.assoc_name, op.key1, op.key2)
                else:
                    raise SchemaError(f"unknown association delta op {op.op!r}")
            else:
                raise SchemaError(f"unknown delta op {op!r}")

    def __len__(self) -> int:
        return len(self.ops)
