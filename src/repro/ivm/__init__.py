"""Incremental view maintenance for the write path.

The update views define how a client state materializes as store rows;
this package pushes *deltas* of the client state through those views —
per-operator delta rules mirroring :mod:`repro.algebra.evaluate` — so an
incremental save touches O(|delta|) rows instead of re-materializing the
whole state.  See ``docs/architecture.md`` (incremental write path).
"""

from repro.ivm.clientdelta import (
    AssociationOp,
    ClientDelta,
    DeltaScript,
    EntityOp,
)
from repro.ivm.writeplan import (
    IncrementalWriteState,
    Writeplan,
    WriteplanCache,
    WriteplanCacheStats,
    push_client_delta,
    seed_counts,
)

__all__ = [
    "AssociationOp",
    "ClientDelta",
    "DeltaScript",
    "EntityOp",
    "IncrementalWriteState",
    "Writeplan",
    "WriteplanCache",
    "WriteplanCacheStats",
    "push_client_delta",
    "seed_counts",
]
