"""Exception taxonomy for the mapping-compilation system.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single base class. Validation failures carry enough
structure to explain *which* check failed, mirroring how the paper's
incremental compiler "undoes its changes ... and returns an exception"
(Section 4.1).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A client or store schema definition is ill-formed.

    Examples: duplicate type names, a key attribute declared on a derived
    type, a foreign key referencing a missing table.
    """


class MappingError(ReproError):
    """A mapping fragment is ill-formed.

    Examples: the projected attributes do not include the key, the
    attribute renaming function is not one-to-one, or a domain of a client
    attribute is not contained in the domain of the store column it maps to.
    """


class ValidationError(ReproError):
    """A mapping failed roundtripping validation.

    Raised by both the full compiler and the incremental compiler when a
    containment or coverage check fails.  The :attr:`check` attribute names
    the failed check (e.g. ``"fk-preservation"``, ``"coverage"``), matching
    the checks enumerated in Sections 3.1.4 and 3.2 of the paper.
    """

    def __init__(self, message: str, check: str = "validation") -> None:
        super().__init__(message)
        self.check = check


class SmoError(ReproError):
    """An SMO is inapplicable to the current model.

    Examples: adding an entity type whose name already exists, mapping to a
    table that is already mentioned in a fragment when the SMO requires a
    fresh table, or referencing an ancestor that is not in the hierarchy.
    """


class EvaluationError(ReproError):
    """A query or view could not be evaluated over an instance."""


class IvmError(ReproError):
    """Incremental delta propagation hit a shape or invariant it cannot
    maintain exactly.

    Never escapes the engine: the incremental save path catches it and
    falls back to a whole-state save, which is always correct.
    """


class CompilationBudgetExceeded(ReproError):
    """Full compilation exceeded its configured work budget.

    Full mapping compilation is exponential in the worst case (Section 1.1).
    Benchmarks impose a budget per point; exceeding it raises this error so
    the harness can record a censored measurement instead of hanging.
    """

    def __init__(self, message: str, elapsed: float | None = None) -> None:
        super().__init__(message)
        self.elapsed = elapsed
