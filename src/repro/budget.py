"""Work budgets for exponential compilation steps.

Full mapping compilation is exponential in the worst case (Section 1.1);
the paper's own Figure 4 points run for up to ~10⁵ seconds.  Benchmarks on
a laptop need censored measurements instead of unbounded runs, so every
potentially-exponential loop in the compilers accepts an optional
:class:`WorkBudget` and calls :meth:`WorkBudget.tick` once per unit of
work.  Exceeding the budget raises :class:`CompilationBudgetExceeded`,
which the bench harness records as a budget-exceeded point.

One budget may be shared by several validation workers (the parallel
scheduler of :mod:`repro.compiler.scheduler`), so step accounting is
atomic: a lock serialises the increment, and the budget trips no earlier
than the tick that actually crosses ``max_steps`` — no steps are lost
under concurrent ticking.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import CompilationBudgetExceeded


class WorkBudget:
    """A step and wall-clock budget shared across one compilation.

    Thread-safe: concurrent :meth:`tick` calls from validation workers are
    serialised on a lock, so ``steps`` never undercounts and the budget
    trips exactly when the accumulated total first exceeds ``max_steps``.
    """

    def __init__(
        self,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> None:
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.steps = 0
        self._started = time.perf_counter()
        self._lock = threading.Lock()
        # Checking the clock on every tick would dominate tight loops;
        # check every _CLOCK_STRIDE ticks instead.
        self._clock_stride = 4096

    def tick(self, steps: int = 1) -> None:
        with self._lock:
            self.steps += steps
            total = self.steps
        if self.max_steps is not None and total > self.max_steps:
            raise CompilationBudgetExceeded(
                f"work budget exceeded: {total} > {self.max_steps} steps",
                elapsed=self.elapsed,
            )
        if self.max_seconds is not None and total % self._clock_stride < steps:
            if self.elapsed > self.max_seconds:
                raise CompilationBudgetExceeded(
                    f"time budget exceeded: {self.elapsed:.1f}s > {self.max_seconds}s",
                    elapsed=self.elapsed,
                )

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started


class UnlimitedBudget(WorkBudget):
    """A budget that never trips; the default."""

    def __init__(self) -> None:
        super().__init__(max_steps=None, max_seconds=None)

    def tick(self, steps: int = 1) -> None:
        with self._lock:
            self.steps += steps


def ensure_budget(budget: Optional[WorkBudget]) -> WorkBudget:
    return budget if budget is not None else UnlimitedBudget()
