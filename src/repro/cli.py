"""Command-line interface.

    python -m repro compile model.json -o compiled.json
    python -m repro validate compiled.json
    python -m repro views compiled.json [NAME]
    python -m repro evolve compiled.json target-schema.json -o next.json
    python -m repro evolve compiled.json target.json --backend sqlite --db app.db
    python -m repro plan compiled.json target-schema.json
    python -m repro query compiled.json Persons --where "Id>1" --db app.db
    python -m repro query compiled.json Persons --repeat 500 --stats
    python -m repro save-delta compiled.json delta.json --db app.db
    python -m repro stats compiled.json --db app.db
    python -m repro ddl compiled.json [--target target-schema.json]
    python -m repro serve --model compiled.json --port 8123
    python -m repro cache stats --cache-dir /var/cache/repro
    python -m repro cache warm compiled.json --cache-dir /var/cache/repro
    python -m repro cache clear --cache-dir /var/cache/repro
    python -m repro bench {fig4,fig9,fig10}

Model documents are the JSON format of :mod:`repro.msl`; ``fragments``
may alternatively be a string of Figure-5 Entity-SQL fragment equations.

The data-bearing verbs (``query``, ``evolve``, ``ddl``) accept
``--backend {memory,sqlite}`` (default: ``$REPRO_BACKEND`` or memory)
and ``--db PATH`` to attach a SQLite database file; ``evolve`` then
migrates the stored data alongside the mapping.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.budget import WorkBudget
from repro.compiler import compile_mapping
from repro.errors import ReproError
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.msl import (
    client_schema_from_json,
    dumps_model,
    load_mapping,
    load_model,
)


def _open_session(args: argparse.Namespace, model: CompiledModel):
    """A session over the backend the flags select (memory by default,
    ``$REPRO_BACKEND`` respected, ``--db`` attaching a SQLite file)."""
    from repro.backend import create_backend
    from repro.errors import SchemaError
    from repro.session import OrmSession

    backend_name = getattr(args, "backend", None)
    db_path = getattr(args, "db", None)
    if db_path and (backend_name or "sqlite") != "sqlite":
        raise SchemaError("--db requires --backend sqlite")
    if db_path:
        backend_name = "sqlite"
    backend = create_backend(backend_name, model.store_schema, db_path=db_path)
    budget = WorkBudget(max_seconds=args.budget) if getattr(args, "budget", None) else None
    return OrmSession(model, backend=backend, budget=budget)


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default=None,
        help="store engine (default: $REPRO_BACKEND or memory)",
    )
    parser.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="SQLite database file to attach (implies --backend sqlite)",
    )


def _read_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _write(path: Optional[str], text: str) -> None:
    if path is None or path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text)


def cmd_compile(args: argparse.Namespace) -> int:
    mapping = load_mapping(_read_json(args.model))
    budget = WorkBudget(max_seconds=args.budget) if args.budget else None
    result = compile_mapping(mapping, budget=budget, validate=not args.no_validate)
    model = CompiledModel(mapping, result.views)
    _write(args.output, dumps_model(model))
    print(
        f"compiled in {result.elapsed:.3f}s"
        + (f" ({result.report})" if result.report else " (validation skipped)"),
        file=sys.stderr,
    )
    return 0


def _open_cache(cache_dir: Optional[str]):
    """A ValidationCache, with the persistent L2 attached when a cache
    directory is named (flag or ``$REPRO_CACHE_DIR``); None otherwise."""
    from repro.containment.cache import ValidationCache
    from repro.containment.persist import (
        PersistentCacheStore,
        cache_dir_from_env,
    )

    resolved = cache_dir if cache_dir is not None else cache_dir_from_env()
    if not resolved:
        return None
    return ValidationCache(store=PersistentCacheStore(resolved))


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.compiler import validate_mapping

    model = load_model(_read_json(args.model))
    budget = WorkBudget(max_seconds=args.budget) if args.budget else None
    cache = _open_cache(args.cache_dir)
    try:
        report = validate_mapping(
            model.mapping,
            model.views,
            budget,
            workers=args.workers,
            executor=args.executor,
            symbolic=not args.no_symbolic,
            cache=cache,
            shard_size=args.shard_size,
        )
    finally:
        if cache is not None:
            cache.close()
    print(f"mapping is valid: {report}")
    if args.stats:
        print("containment fast path:")
        print(
            f"  symbolic discharged : {report.symbolic_discharged}"
            f"/{report.containment_checks} containment checks"
        )
        print(
            f"  branches            : {report.branches_discharged} discharged,"
            f" {report.branches_pruned} pruned unsat"
        )
        print(f"  states enumerated   : {report.containment_states}")
        print(f"  counterexample replays: {report.counterexample_replays}")
        if report.check_timings:
            print("slowest checks:")
            ranked = sorted(
                report.check_timings.items(), key=lambda item: -item[1]
            )
            for name, elapsed in ranked[:10]:
                print(f"  {name:<40s} {elapsed * 1000.0:8.2f} ms")
    return 0


def cmd_views(args: argparse.Namespace) -> int:
    model = load_model(_read_json(args.model))
    views = model.views
    if args.name:
        if args.name in views.query_views:
            print(views.query_view(args.name).to_sql())
        elif args.name in views.update_views:
            print(views.update_view(args.name).to_sql())
        elif args.name in views.association_views:
            print(views.association_view(args.name).to_sql())
        else:
            print(f"no view named {args.name!r}", file=sys.stderr)
            return 1
    else:
        print(views.to_sql())
    return 0


def _diffed_smos(args: argparse.Namespace):
    """(model, smos) for the evolve/plan verbs: diff model against target."""
    from repro.modef import smos_from_diff

    model = load_model(_read_json(args.model))
    target_document = _read_json(args.target)
    target = client_schema_from_json(
        target_document.get("clientSchema", target_document)
    )
    overrides = dict(
        pair.split("=", 1) for pair in (args.style or [])
    )
    smos = smos_from_diff(model, target, style_overrides=overrides or None)
    return model, smos


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.compiler.scheduler import describe_checks

    model, smos = _diffed_smos(args)
    session = _open_session(args, model)
    try:
        if args.batch:
            session.evolve_many(smos)
            entry = session.journal[-1]
            print(f"applied {entry}", file=sys.stderr)
            print(describe_checks(entry.check_names), file=sys.stderr)
        else:
            for smo in smos:
                session.evolve(smo)
                print(f"applied {session.journal[-1]}", file=sys.stderr)
        if session.backend.name == "sqlite":
            print(
                f"migrated store at {session.backend.db_path} "
                f"({session.backend.row_count()} rows)",
                file=sys.stderr,
            )
        _write(args.output, dumps_model(session.model))
    finally:
        session.backend.close()
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.compiler.scheduler import describe_checks

    model, smos = _diffed_smos(args)
    compiler = IncrementalCompiler(
        budget=WorkBudget(max_seconds=args.budget) if args.budget else None
    )
    plan = compiler.plan(model, smos)
    print(plan.describe())
    if plan.ok:
        print(describe_checks(plan.check_names))
        if args.backend or args.db:
            # also preview the store-side migration the batch implies
            session = _open_session(args, model)
            try:
                script = session.migration_script(smos)
                print(script.summary())
            finally:
                session.backend.close()
    return 0 if plan.ok else 1


def _parse_where(text: str):
    """A single comparison atom: ``Attr OP literal`` — the service wire
    format's condition syntax (one parser for CLI and HTTP)."""
    from repro.service.wire import parse_condition

    return parse_condition(text)


def cmd_query(args: argparse.Namespace) -> int:
    from repro.algebra.conditions import TRUE
    from repro.query import EntityQuery

    model = load_model(_read_json(args.model))
    condition = _parse_where(args.where) if args.where else TRUE
    projection = tuple(args.project.split(",")) if args.project else None
    query = EntityQuery(args.set_name, condition, projection)
    session = _open_session(args, model)
    try:
        if args.explain:
            # both forms read the session's plan cache, so what explain
            # prints is provably the plan `query` would execute
            if session.backend.name == "sqlite":
                for concrete_type, text, params in session.explain_sql(query):
                    print(f"-- constructs {concrete_type}")
                    print(text + ";")
                    if params:
                        print(f"-- params: {list(params)}")
            else:
                print(session.explain(query))
            return 0
        repeat = max(1, args.repeat)
        for _ in range(repeat):
            results = session.query(query)
        results = sorted(results, key=repr)
        for result in results:
            print(result)
        print(
            f"{len(results)} result(s)"
            + (f" x {repeat} repeat(s)" if repeat > 1 else ""),
            file=sys.stderr,
        )
        if args.stats:
            print(session.serving_stats(), file=sys.stderr)
        return 0
    finally:
        session.backend.close()


def cmd_save_delta(args: argparse.Namespace) -> int:
    """Apply a delta-script document through the incremental write path."""
    from repro.service.wire import delta_script_from_json

    model = load_model(_read_json(args.model))
    script = delta_script_from_json(_read_json(args.delta))
    session = _open_session(args, model)
    try:
        delta = session.save_delta(script)
        print(delta)
        print(
            f"{len(script)} op(s) -> {delta.statement_count()} statement(s)",
            file=sys.stderr,
        )
        if args.stats:
            print(session.serving_stats(), file=sys.stderr)
        return 0
    finally:
        session.backend.close()


def cmd_stats(args: argparse.Namespace) -> int:
    """Exercise every entity set twice and print the serving counters —
    a quick view of plan/statement cache behaviour on a given store."""
    from repro.query import EntityQuery

    model = load_model(_read_json(args.model))
    session = _open_session(args, model)
    try:
        for entity_set in model.client_schema.entity_sets:
            query = EntityQuery(entity_set.name)
            for _ in range(max(1, args.repeat)):
                session.query(query)
        print(session.serving_stats())
        print(f"validation cache: {session.cache_stats()}")
        return 0
    finally:
        session.backend.close()


def cmd_ddl(args: argparse.Namespace) -> int:
    from repro.backend import schema_ddl_text

    if not args.target:
        model = load_model(_read_json(args.model))
        print(schema_ddl_text(model.store_schema))
        return 0
    model, smos = _diffed_smos(args)
    session = _open_session(args, model)
    try:
        script = session.migration_script(smos)
        print(script.summary(), file=sys.stderr)
        print(script.to_sql())
        return 0
    finally:
        session.backend.close()


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, warm, or wipe the persistent validation cache."""
    from repro.containment.persist import (
        PersistentCacheStore,
        cache_dir_from_env,
    )
    from repro.errors import SchemaError

    cache_dir = args.cache_dir or cache_dir_from_env()
    if not cache_dir:
        raise SchemaError(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    if args.action == "stats":
        store = PersistentCacheStore(cache_dir)
        try:
            print(store.stats())
        finally:
            store.close()
        return 0
    if args.action == "clear":
        store = PersistentCacheStore(cache_dir)
        try:
            store.clear()
            print(f"cleared {store.path}", file=sys.stderr)
        finally:
            store.close()
        return 0
    # warm: validate the model through the persistent cache so later
    # processes (CLI or service) start from a hot disk cache
    if not args.model:
        raise SchemaError("cache warm needs a MODEL document")
    from repro.compiler import validate_mapping

    model = load_model(_read_json(args.model))
    budget = WorkBudget(max_seconds=args.budget) if args.budget else None
    cache = _open_cache(cache_dir)
    try:
        report = validate_mapping(
            model.mapping,
            model.views,
            budget,
            workers=args.workers,
            executor=args.executor,
            cache=cache,
        )
        print(f"warmed: {report}")
        print(cache.store.stats(), file=sys.stderr)
    finally:
        cache.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant HTTP session service."""
    from repro.service import SessionService
    from repro.service.http import serve

    backend_name = getattr(args, "backend", None)
    if getattr(args, "db_dir", None):
        backend_name = "sqlite"
    service = SessionService(
        default_backend=backend_name,
        db_dir=args.db_dir,
        pool_size=args.pool_size,
        cache_dir=args.cache_dir,
        result_cache_budget=args.result_cache_budget,
    )
    if args.model:
        result = service.create_tenant(
            args.tenant, _read_json(args.model)
        )
        print(
            f"tenant {result['tenant']!r} ready on {result['backend']} "
            f"(epoch {result['epoch']})",
            file=sys.stderr,
        )
    serve(service, host=args.host, port=args.port)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.figure == "fig4":
        from repro.bench.fig4 import main as bench_main
    elif args.figure == "fig9":
        from repro.bench.fig9 import main as bench_main
    else:
        from repro.bench.fig10 import main as bench_main
    bench_main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental object-to-relational mapping compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="full-compile a mapping document")
    p.add_argument("model")
    p.add_argument("-o", "--output", default="-")
    p.add_argument("--budget", type=float, default=None, help="seconds")
    p.add_argument("--no-validate", action="store_true")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("validate", help="re-validate a compiled model")
    p.add_argument("model")
    p.add_argument("--budget", type=float, default=None)
    p.add_argument(
        "--workers", type=int, default=1, help="validation scheduler workers"
    )
    p.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="check executor (default: serial for 1 worker, thread otherwise)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-check timings and symbolic-containment counters",
    )
    p.add_argument(
        "--no-symbolic",
        action="store_true",
        help="disable the symbolic containment fast path (pure enumeration)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent validation cache directory "
        "(default: $REPRO_CACHE_DIR; omit both for in-memory only)",
    )
    p.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="checks per work-stealing shard for parallel executors "
        "(default: auto, ~4 shards per worker)",
    )
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("views", help="print compiled views as Entity SQL")
    p.add_argument("model")
    p.add_argument("name", nargs="?", default=None)
    p.set_defaults(fn=cmd_views)

    p = sub.add_parser(
        "evolve", help="diff against a target client schema and apply SMOs"
    )
    p.add_argument("model")
    p.add_argument("target")
    p.add_argument("-o", "--output", default="-")
    p.add_argument(
        "--style",
        action="append",
        metavar="TYPE=TPT|TPC|TPH",
        help="force a mapping style for an added type",
    )
    p.add_argument("--budget", type=float, default=None)
    p.add_argument(
        "--batch",
        action="store_true",
        help="compile all diffed SMOs as one batch, validating the union "
        "neighborhood once",
    )
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_evolve)

    p = sub.add_parser(
        "plan",
        help="dry-run the SMOs a target schema implies: delta ops and "
        "scheduled checks, without writing a model",
    )
    p.add_argument("model")
    p.add_argument("target")
    p.add_argument(
        "--style",
        action="append",
        metavar="TYPE=TPT|TPC|TPH",
        help="force a mapping style for an added type",
    )
    p.add_argument("--budget", type=float, default=None)
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "query", help="run an entity query against a store backend"
    )
    p.add_argument("model")
    p.add_argument("set_name", help="entity set to query")
    p.add_argument(
        "--where", default=None, metavar="COND", help="e.g. \"Id>1\", \"Name='ann'\""
    )
    p.add_argument(
        "--project", default=None, metavar="ATTRS", help="comma-separated attributes"
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the cached store plan (generated SQL on sqlite) "
        "instead of running it",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the query N times (warm-plan serving; results printed once)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print plan/statement cache counters after running",
    )
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser(
        "save-delta",
        help="apply a delta-script document (wire {'ops': [...]}) through "
        "the incremental write path",
    )
    p.add_argument("model")
    p.add_argument("delta", help="delta-script JSON document")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print serving counters (incl. write plans) after applying",
    )
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_save_delta)

    p = sub.add_parser(
        "stats",
        help="query every entity set --repeat times and print plan/"
        "statement/validation cache counters",
    )
    p.add_argument("model")
    p.add_argument(
        "--repeat",
        type=int,
        default=2,
        metavar="N",
        help="runs per entity set (default 2: one miss, then hits)",
    )
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "ddl",
        help="print the store schema's CREATE TABLE script, or (with "
        "--target) the DDL+DML migration script a planned batch implies",
    )
    p.add_argument("model")
    p.add_argument(
        "--target", default=None, help="target client schema to diff against"
    )
    p.add_argument(
        "--style",
        action="append",
        metavar="TYPE=TPT|TPC|TPH",
        help="force a mapping style for an added type",
    )
    _add_backend_flags(p)
    p.set_defaults(fn=cmd_ddl)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP session service (query/save/"
        "save_delta/evolve/undo/stats over JSON; one epoch-engine session "
        "per tenant)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument(
        "--model",
        default=None,
        help="compiled model document to preload as a tenant",
    )
    p.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant name for --model (default: 'default')",
    )
    p.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default=None,
        help="default store engine for new tenants",
    )
    p.add_argument(
        "--db-dir",
        default=None,
        metavar="DIR",
        help="directory for per-tenant SQLite files (implies sqlite)",
    )
    p.add_argument(
        "--pool-size",
        type=int,
        default=4,
        metavar="N",
        help="reader connections per SQLite tenant (default 4)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared persistent validation cache directory for all "
        "tenants (default: $REPRO_CACHE_DIR)",
    )
    p.add_argument(
        "--result-cache-budget",
        type=int,
        default=None,
        metavar="CELLS",
        help="materialized result tier budget per tenant in cells "
        "(rows x width; 0 disables the tier, default 2000000)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "cache",
        help="inspect (stats), pre-populate (warm MODEL), or wipe (clear) "
        "the persistent cross-process validation cache",
    )
    p.add_argument("action", choices=["stats", "warm", "clear"])
    p.add_argument(
        "model",
        nargs="?",
        default=None,
        help="compiled model document (required for 'warm')",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    p.add_argument("--budget", type=float, default=None, help="seconds")
    p.add_argument(
        "--workers", type=int, default=1, help="validation scheduler workers"
    )
    p.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="check executor for 'warm'",
    )
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("bench", help="run a figure's benchmark driver")
    p.add_argument("figure", choices=["fig4", "fig9", "fig10"])
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
