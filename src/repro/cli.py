"""Command-line interface.

    python -m repro compile model.json -o compiled.json
    python -m repro validate compiled.json
    python -m repro views compiled.json [NAME]
    python -m repro evolve compiled.json target-schema.json -o next.json
    python -m repro evolve compiled.json target-schema.json --batch -o next.json
    python -m repro plan compiled.json target-schema.json
    python -m repro bench {fig4,fig9,fig10}

Model documents are the JSON format of :mod:`repro.msl`; ``fragments``
may alternatively be a string of Figure-5 Entity-SQL fragment equations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.budget import WorkBudget
from repro.compiler import compile_mapping
from repro.errors import ReproError
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.msl import (
    client_schema_from_json,
    dumps_model,
    load_mapping,
    load_model,
)


def _read_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _write(path: Optional[str], text: str) -> None:
    if path is None or path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text)


def cmd_compile(args: argparse.Namespace) -> int:
    mapping = load_mapping(_read_json(args.model))
    budget = WorkBudget(max_seconds=args.budget) if args.budget else None
    result = compile_mapping(mapping, budget=budget, validate=not args.no_validate)
    model = CompiledModel(mapping, result.views)
    _write(args.output, dumps_model(model))
    print(
        f"compiled in {result.elapsed:.3f}s"
        + (f" ({result.report})" if result.report else " (validation skipped)"),
        file=sys.stderr,
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.compiler import validate_mapping

    model = load_model(_read_json(args.model))
    budget = WorkBudget(max_seconds=args.budget) if args.budget else None
    report = validate_mapping(
        model.mapping,
        model.views,
        budget,
        workers=args.workers,
        executor=args.executor,
    )
    print(f"mapping is valid: {report}")
    return 0


def cmd_views(args: argparse.Namespace) -> int:
    model = load_model(_read_json(args.model))
    views = model.views
    if args.name:
        if args.name in views.query_views:
            print(views.query_view(args.name).to_sql())
        elif args.name in views.update_views:
            print(views.update_view(args.name).to_sql())
        elif args.name in views.association_views:
            print(views.association_view(args.name).to_sql())
        else:
            print(f"no view named {args.name!r}", file=sys.stderr)
            return 1
    else:
        print(views.to_sql())
    return 0


def _diffed_smos(args: argparse.Namespace):
    """(model, smos) for the evolve/plan verbs: diff model against target."""
    from repro.modef import smos_from_diff

    model = load_model(_read_json(args.model))
    target_document = _read_json(args.target)
    target = client_schema_from_json(
        target_document.get("clientSchema", target_document)
    )
    overrides = dict(
        pair.split("=", 1) for pair in (args.style or [])
    )
    smos = smos_from_diff(model, target, style_overrides=overrides or None)
    return model, smos


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.compiler.scheduler import describe_checks

    model, smos = _diffed_smos(args)
    compiler = IncrementalCompiler(
        budget=WorkBudget(max_seconds=args.budget) if args.budget else None
    )
    if args.batch:
        batch = compiler.compile_batch(model, smos)
        print(f"applied {batch}", file=sys.stderr)
        print(
            f"neighborhood {batch.neighborhood}: "
            f"{describe_checks(batch.check_names)}",
            file=sys.stderr,
        )
        model = batch.model
    else:
        for result in compiler.apply_all(model, smos):
            print(f"applied {result}", file=sys.stderr)
            model = result.model
    _write(args.output, dumps_model(model))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.compiler.scheduler import describe_checks

    model, smos = _diffed_smos(args)
    compiler = IncrementalCompiler(
        budget=WorkBudget(max_seconds=args.budget) if args.budget else None
    )
    plan = compiler.plan(model, smos)
    print(plan.describe())
    if plan.ok:
        print(describe_checks(plan.check_names))
    return 0 if plan.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    if args.figure == "fig4":
        from repro.bench.fig4 import main as bench_main
    elif args.figure == "fig9":
        from repro.bench.fig9 import main as bench_main
    else:
        from repro.bench.fig10 import main as bench_main
    bench_main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental object-to-relational mapping compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="full-compile a mapping document")
    p.add_argument("model")
    p.add_argument("-o", "--output", default="-")
    p.add_argument("--budget", type=float, default=None, help="seconds")
    p.add_argument("--no-validate", action="store_true")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("validate", help="re-validate a compiled model")
    p.add_argument("model")
    p.add_argument("--budget", type=float, default=None)
    p.add_argument(
        "--workers", type=int, default=1, help="validation scheduler workers"
    )
    p.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="check executor (default: serial for 1 worker, thread otherwise)",
    )
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("views", help="print compiled views as Entity SQL")
    p.add_argument("model")
    p.add_argument("name", nargs="?", default=None)
    p.set_defaults(fn=cmd_views)

    p = sub.add_parser(
        "evolve", help="diff against a target client schema and apply SMOs"
    )
    p.add_argument("model")
    p.add_argument("target")
    p.add_argument("-o", "--output", default="-")
    p.add_argument(
        "--style",
        action="append",
        metavar="TYPE=TPT|TPC|TPH",
        help="force a mapping style for an added type",
    )
    p.add_argument("--budget", type=float, default=None)
    p.add_argument(
        "--batch",
        action="store_true",
        help="compile all diffed SMOs as one batch, validating the union "
        "neighborhood once",
    )
    p.set_defaults(fn=cmd_evolve)

    p = sub.add_parser(
        "plan",
        help="dry-run the SMOs a target schema implies: delta ops and "
        "scheduled checks, without writing a model",
    )
    p.add_argument("model")
    p.add_argument("target")
    p.add_argument(
        "--style",
        action="append",
        metavar="TYPE=TPT|TPC|TPH",
        help="force a mapping style for an added type",
    )
    p.add_argument("--budget", type=float, default=None)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("bench", help="run a figure's benchmark driver")
    p.add_argument("figure", choices=["fig4", "fig9", "fig10"])
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
