"""The epoch-based serving engine: concurrent queries, serialized writers.

The paper's incremental compiler exists so a *live* ORM can evolve its
schema without stopping the world.  This module is the runtime half of
that claim: an :class:`OrmSession` is split into an immutable
:class:`Epoch` value (compiled model + structural fingerprint + the plan
cache slice valid for it + a data read view) and a :class:`SessionEngine`
that coordinates readers and writers around it.

**Reader protocol** — :meth:`SessionEngine.query` is lock-free.  A reader
grabs the current epoch reference (one attribute read, atomic under the
GIL), resolves its plan from the epoch's own plan cache, and executes:

* on engines with **snapshot reads** (memory: store states are replaced
  wholesale, never mutated) the epoch's view pins one immutable state, so
  the response is consistent with that epoch *by construction* — even if
  a writer publishes ten epochs mid-flight, this reader finishes on its
  own;
* on **live engines** (SQLite: the data is in the database, one version
  at a time) reads are validated with a seqlock: the engine's version
  counter is odd while a writer mutates, and a reader whose counter
  observation changed across its execution — or whose statements raced a
  table rebuild and failed — retries on the fresh epoch.  A bounded
  number of retries falls back to running under the writer lock, which
  cannot race.  Either way **no torn response is ever served**: every
  answer is consistent with exactly one epoch.

**Writer protocol** — ``save`` / ``evolve`` / ``evolve_many`` / ``undo`` /
``replace_contents`` serialize on one re-entrant writer lock.  A writer
builds everything off to the side (compile the batch, compute the
migrated store, derive the successor plan cache with delta-scoped
invalidation), then publishes in a short critical window::

    version += 1        (odd: live readers will retry)
    backend mutation    (transactional: all or nothing)
    epoch = next_epoch  (THE atomic swap)
    version += 1        (even: readers are clean again)

In-flight snapshot readers finish on the old epoch; new readers land on
the new one.  On a validation abort nothing was published and the old
epoch stands untouched.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.backend.base import ReadView, StoreBackend
from repro.backend.migrate import plan_migration
from repro.budget import WorkBudget
from repro.compiler.validation import (
    ValidationReport,
    validate_delta_neighborhood,
    validate_mapping,
)
from repro.containment.cache import ValidationCache
from repro.containment.persist import PersistentCacheStore, cache_dir_from_env
from repro.edm.instances import ClientState
from repro.errors import EvaluationError, IvmError, SmoError
from repro.incremental.delta import MappingDelta
from repro.incremental.model import CompiledModel
from repro.incremental.smo import EvolutionPlan, IncrementalCompiler, Smo
from repro.ivm import (
    ClientDelta,
    DeltaScript,
    IncrementalWriteState,
    WriteplanCache,
    push_client_delta,
    seed_counts,
)
from repro.mapping.roundtrip import apply_query_views, apply_update_views
from repro.query.dml import StoreDelta, diff_store_states
from repro.query.language import EntityQuery
from repro.query.plancache import CachedPlan, PlanCache
from repro.query.resultcache import DEFAULT_RESULT_BUDGET, ResultCache
from repro.relational.instances import StoreState

try:  # the engines raise these when a read races a migration
    import sqlite3

    _RETRYABLE_READ_ERRORS: Tuple[type, ...] = (
        sqlite3.OperationalError,
        sqlite3.ProgrammingError,
    )
except ImportError:  # pragma: no cover
    _RETRYABLE_READ_ERRORS = ()


@dataclass(frozen=True)
class JournalEntry:
    """One committed evolution in the session's transactional journal.

    Records everything needed to report on — and to *undo* — the step:
    the declarative :class:`MappingDelta` the batch emitted (whose
    ``inverse()`` replays the model back), a snapshot of the store state
    from before the migration, and the neighborhood checks the batch
    scheduled (used by the benchmarks to compare sequential vs batched
    validation work).
    """

    label: str
    smos: Tuple[Smo, ...]
    delta: MappingDelta
    store_delta: "StoreDelta"
    store_before: StoreState
    check_names: Tuple[str, ...]

    @property
    def scheduled_checks(self) -> int:
        return len(self.check_names)

    def __str__(self) -> str:
        return (
            f"{self.label}: {len(self.delta)} delta op(s), "
            f"{self.scheduled_checks} check(s)"
        )


@dataclass(frozen=True)
class Epoch:
    """One immutable serving generation.

    Everything a reader needs travels together and is published with a
    single reference swap: the compiled model, its structural
    fingerprint (the identity a response is 'consistent with'), the plan
    cache slice valid for exactly this model, and the data read view.
    Nothing here is ever mutated after publication — the plan cache
    object accepts new *entries* (memoization is monotone; a plan cached
    late is the plan that would have been built early), but its keyed
    contents can only describe this epoch's model.
    """

    epoch_id: int
    model: CompiledModel
    fingerprint: str
    plan_cache: PlanCache
    view: ReadView
    #: the materialized result tier valid for exactly this epoch; like
    #: the plan cache it accepts new entries (population is monotone
    #: memoization of this epoch's answers) but is never *maintained* in
    #: place — write paths derive a successor and publish it with the
    #: next epoch
    results: Optional[ResultCache] = None

    def __str__(self) -> str:
        return f"Epoch({self.epoch_id}, {self.fingerprint[:12]}…)"


@dataclass
class EngineStats:
    """Reader/writer coordination counters."""

    epoch_id: int
    epochs_published: int
    queries: int = 0
    #: reads that observed a concurrent write and re-executed
    read_retries: int = 0
    #: reads that exhausted retries and ran under the writer lock
    serialized_reads: int = 0
    #: responses served despite failing validation — must stay 0;
    #: anything else is a bug, and the concurrent benchmark asserts on it
    torn_reads_served: int = 0
    #: incremental saves that hit an IvmError and fell back to a
    #: whole-state save (correct, just not incremental)
    ivm_fallbacks: int = 0

    def __str__(self) -> str:
        return (
            f"EngineStats(epoch={self.epoch_id}, "
            f"published={self.epochs_published}, queries={self.queries}, "
            f"retries={self.read_retries}, "
            f"serialized={self.serialized_reads}, "
            f"torn_served={self.torn_reads_served}, "
            f"ivm_fallbacks={self.ivm_fallbacks})"
        )


class SessionEngine:
    """Epoch-coordinated core of an ORM session.

    One engine owns one backend, one validation cache, one journal, and
    the chain of epochs it publishes.  All public readers are safe from
    any thread; all writers serialize internally — callers never manage
    locks.
    """

    #: live-view reads retry this many times before serializing
    MAX_READ_RETRIES = 16

    def __init__(
        self,
        model: CompiledModel,
        backend: StoreBackend,
        budget: Optional[WorkBudget] = None,
        cache_dir: Optional[str] = None,
        result_cache_budget: Optional[int] = None,
    ) -> None:
        self.backend = backend
        # The validation cache is the per-process L1; *cache_dir* (or the
        # REPRO_CACHE_DIR environment variable) attaches the on-disk L2
        # every process sharing the directory warms and is warmed by.
        resolved_dir = cache_dir if cache_dir is not None else cache_dir_from_env()
        store = PersistentCacheStore(resolved_dir) if resolved_dir else None
        self.validation_cache = ValidationCache(store=store)
        self._compiler = IncrementalCompiler(
            budget=budget, cache=self.validation_cache
        )
        #: scheduler defaults for batch validation (evolve/evolve_many);
        #: sessions doing heavy evolution can point these at the process
        #: executor, whose persistent pool amortizes across batches
        self.validation_workers = 1
        self.validation_executor: Optional[str] = None
        self.validation_shard_size: Optional[int] = None
        #: composition of every delta committed since the last successful
        #: validate() — its touched neighborhood is the minimal re-check
        #: scope after an arbitrarily long SMO history
        self._unvalidated_delta = MappingDelta()
        #: committed evolutions, oldest first; ``undo`` pops from the end
        self.journal: List[JournalEntry] = []
        self._writer_lock = threading.RLock()
        #: seqlock: odd while a writer is inside its publication window
        self._version = 0
        self._epoch_counter = 0
        self._epochs_published = 0
        self._queries = 0
        self._read_retries = 0
        self._serialized_reads = 0
        self._torn_reads_served = 0
        self._ivm_fallbacks = 0
        #: compiled write plans survive across epochs (delta-scoped
        #: invalidation on evolution, like the read-side PlanCache)
        self.writeplans = WriteplanCache()
        #: lazily-materialized client view + view-row counts backing the
        #: incremental write path; None = must reseed from the backend
        self._incremental: Optional[IncrementalWriteState] = None
        #: rows × width cells the result tier may hold; 0 disables it
        self._result_budget = (
            result_cache_budget
            if result_cache_budget is not None
            else DEFAULT_RESULT_BUDGET
        )
        self._epoch = self._next_epoch(
            model, PlanCache(), results=ResultCache(self._result_budget)
        )

    # ------------------------------------------------------------------
    # Epoch plumbing
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Epoch:
        """The current epoch (atomic to read; grab once per request)."""
        return self._epoch

    def _next_epoch(
        self,
        model: CompiledModel,
        plan_cache: PlanCache,
        fingerprint: Optional[str] = None,
        results: Optional[ResultCache] = None,
    ) -> Epoch:
        self._epoch_counter += 1
        self._epochs_published += 1
        return Epoch(
            epoch_id=self._epoch_counter,
            model=model,
            fingerprint=(
                fingerprint if fingerprint is not None else model.fingerprint()
            ),
            plan_cache=plan_cache,
            view=self.backend.read_view(),
            results=(
                results
                if results is not None
                else ResultCache(self._result_budget)
            ),
        )

    def _commit(
        self,
        mutate: Callable[[], object],
        model: CompiledModel,
        plan_cache: PlanCache,
        fingerprint: Optional[str] = None,
        make_results: Optional[Callable[[], ResultCache]] = None,
    ):
        """The publication window (writer lock held by the caller).

        Backend mutations are transactional, so an exception means the
        data is unchanged and the *old* epoch remains exactly right —
        only the seqlock is restored.  On success the new epoch becomes
        visible with one reference assignment.

        *make_results* builds the next epoch's result-tier slice.  It
        runs after the mutation succeeded (so it can read the post-write
        store state) and before the swap; if it fails, the tier degrades
        to an empty successor — dropping cached answers is always
        correct, serving stale ones never is.
        """
        old_view = self._epoch.view
        self._version += 1  # odd: live readers back off
        try:
            result = mutate()
        except BaseException:
            self._version += 1  # even again; nothing was published
            raise
        try:
            results = (
                make_results()
                if make_results is not None
                else self._epoch.results.empty_successor()
            )
        except Exception:
            results = self._epoch.results.empty_successor()
        self._epoch = self._next_epoch(model, plan_cache, fingerprint, results)
        self._version += 1  # even: publication complete
        old_view.release()
        return result

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def query(self, query: EntityQuery) -> List[object]:
        """Answer an object query; safe from any thread, lock-free on
        snapshot backends."""
        rows, _ = self.query_with_epoch(query)
        return rows

    def query_with_epoch(
        self, query: EntityQuery
    ) -> Tuple[List[object], Epoch]:
        """(rows, the epoch the response is consistent with).

        The returned epoch's fingerprint is the consistency token: the
        serving benchmark asserts every concurrent response matches
        exactly one published fingerprint.
        """
        self._queries += 1
        epoch = self._epoch
        if epoch.view.snapshot:
            return self.query_on(epoch, query), epoch

        # Live backends: a result-tier hit touches no backend at all, so
        # it cannot race a migration — serve it before the seqlock loop.
        results = epoch.results
        if results is not None and results.enabled:
            plan, values, key = epoch.plan_cache.plan_with_key(
                epoch.model, query
            )
            cached = results.lookup(key, values, epoch.fingerprint)
            if cached is not None:
                return cached, epoch

        for _ in range(self.MAX_READ_RETRIES):
            before = self._version
            if before & 1:  # writer mid-publication; brief yield
                self._read_retries += 1
                time.sleep(0.0005)
                continue
            epoch = self._epoch
            try:
                rows = self.query_on(epoch, query)
            except _RETRYABLE_READ_ERRORS:
                # a migration rebuilt a table under this read
                rows = None
            except EvaluationError:
                # a stale plan bound against a swapped schema slice
                rows = None
            if rows is not None and self._version == before:
                self._populate_live(epoch, query, rows, before)
                return rows, epoch
            self._read_retries += 1
        # Sustained churn: serialize this one read against writers.
        with self._writer_lock:
            self._serialized_reads += 1
            epoch = self._epoch
            rows = self.query_on(epoch, query)
            self._populate_live(epoch, query, rows, self._version)
            return rows, epoch

    def query_on(self, epoch: Epoch, query: EntityQuery) -> List[object]:
        """Execute *query* against a specific epoch.

        On snapshot backends this is how a reader stays pinned: an old
        epoch keeps answering from its own immutable state while newer
        epochs serve fresh traffic.  On live backends the data under the
        view may have moved on — use :meth:`query_with_epoch` unless you
        are inside its validation loop.
        """
        results = epoch.results
        if (
            results is not None
            and results.enabled
            and epoch.view.snapshot
        ):
            # Snapshot backends populate inline: the view pins exactly
            # the state the rows came from, so the materialized bags are
            # consistent with this epoch by construction.
            plan, values, key = epoch.plan_cache.plan_with_key(
                epoch.model, query
            )
            cached = results.lookup(key, values, epoch.fingerprint)
            if cached is not None:
                return cached
            with epoch.view.acquire() as reader:
                rows = plan.execute(reader, values)
                state = reader.to_store_state()
            results.populate(
                key,
                values,
                plan,
                epoch.model.store_schema,
                state,
                epoch.fingerprint,
                executed_rows=rows,
            )
            return rows
        plan, values = epoch.plan_cache.plan_for(epoch.model, query)
        with epoch.view.acquire() as reader:
            return plan.execute(reader, values)

    def _populate_live(
        self, epoch: Epoch, query: EntityQuery, rows: List[object], before: int
    ) -> None:
        """Materialize a validated live-backend read into the result tier.

        The seqlock already proved *rows* are consistent with *epoch*;
        what must still be guarded is the store-state capture the bags
        are seeded from.  The version counter is monotonic, so observing
        ``before`` again after :meth:`to_store_state` proves no writer
        entered its publication window in between — the state is the one
        the rows were computed on.  Any ambiguity skips the population;
        the next read simply misses.
        """
        results = epoch.results
        if results is None or not results.enabled:
            return
        try:
            plan, values, key = epoch.plan_cache.plan_with_key(
                epoch.model, query
            )
            if results.has(key, values):
                return
            state = self.backend.to_store_state()
            if self._version != before or self._epoch is not epoch:
                return
            results.populate(
                key,
                values,
                plan,
                epoch.model.store_schema,
                state,
                epoch.fingerprint,
                executed_rows=rows,
            )
        except _RETRYABLE_READ_ERRORS:
            pass  # raced a migration; the entry is simply not cached

    def plan_for(
        self, query: EntityQuery
    ) -> Tuple[CachedPlan, Tuple[object, ...], Epoch]:
        """The cached plan for *query* under the current epoch (explain
        paths want the plan itself, not its results)."""
        epoch = self._epoch
        plan, values = epoch.plan_cache.plan_for(epoch.model, query)
        return plan, values, epoch

    def load(self) -> ClientState:
        """Materialise the whole object view of the database (Q)."""
        epoch = self._epoch
        if epoch.view.snapshot:
            with epoch.view.acquire() as reader:
                state = reader.to_store_state()
            return apply_query_views(
                epoch.model.views, state, epoch.model.client_schema
            )
        # live backends: a whole-database read must not interleave a
        # migration; take the writer lock (loads are rare and heavy)
        with self._writer_lock:
            epoch = self._epoch
            return apply_query_views(
                epoch.model.views,
                self.backend.to_store_state(),
                epoch.model.client_schema,
            )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, new_state: ClientState) -> StoreDelta:
        """SaveChanges: persist *new_state* as the object view.

        Data-only: the epoch's model and plans carry over unchanged, but
        a fresh epoch (same fingerprint) is still published so snapshot
        readers see the new data atomically.
        """
        with self._writer_lock:
            self._incremental = None  # state replaced wholesale; reseed lazily
            epoch = self._epoch
            target = apply_update_views(
                epoch.model.views, new_state, epoch.model.store_schema
            )
            delta = diff_store_states(self.backend.to_store_state(), target)
            written = [
                name for name, td in delta.tables.items() if not td.empty
            ]
            self._commit(
                lambda: self.backend.apply_delta(delta),
                epoch.model,
                epoch.plan_cache,
                fingerprint=epoch.fingerprint,
                # whole-state save: no signed DML to propagate, so the
                # result tier drops exactly the entries scanning a
                # written table and carries the rest
                make_results=lambda: epoch.results.successor_for_tables(
                    written, epoch.fingerprint
                ),
            )
            return delta

    # ------------------------------------------------------------------
    # Incremental writing (IVM)
    # ------------------------------------------------------------------
    def _incremental_write_state(self) -> IncrementalWriteState:
        """The cached client view + view-row counts (writer lock held).

        Seeded on first use (or after anything that replaced the data or
        the model out from under it) by one whole-database load plus one
        bag evaluation of every update view — the last full-cost
        materialization an uninterrupted run of incremental saves pays.
        """
        if self._incremental is None:
            state = self.load()
            counts = seed_counts(self._epoch.model, state)
            self._incremental = IncrementalWriteState(state, counts)
        return self._incremental

    def apply_script(self, script: DeltaScript) -> StoreDelta:
        """Apply a :class:`DeltaScript` incrementally (the wire verb).

        The script replays onto the engine's cached client view with
        recording on; the captured :class:`ClientDelta` then pushes
        through the compiled writeplans.  Validation errors raised by the
        replay leave the cached state only partially mutated, so any
        failure drops the cache — the next incremental save reseeds.
        """
        with self._writer_lock:
            inc = self._incremental_write_state()
            recorder = ClientDelta()
            inc.client_state.record_into(recorder)
            try:
                script.apply_to(inc.client_state)
            except BaseException:
                self._incremental = None
                raise
            finally:
                inc.client_state.stop_recording()
            return self._push_delta(inc, recorder)

    @contextmanager
    def incremental_edit(self) -> Iterator[ClientState]:
        """Context manager yielding the cached client view with recording
        on; mutations made inside the block are pushed incrementally on
        exit.  An exception inside the block drops the cache (the state
        may be partially mutated) and propagates."""
        with self._writer_lock:
            inc = self._incremental_write_state()
            recorder = ClientDelta()
            inc.client_state.record_into(recorder)
            try:
                yield inc.client_state
            except BaseException:
                self._incremental = None
                raise
            finally:
                inc.client_state.stop_recording()
            self._push_delta(inc, recorder)

    def apply_client_delta(self, delta: ClientDelta) -> StoreDelta:
        """Push an externally-recorded :class:`ClientDelta`.

        The delta must describe mutations *already applied* to the
        engine's cached client view (record with
        :meth:`incremental_edit`, or :meth:`ClientState.record_into` on
        the state returned by a prior load that the engine adopted).
        """
        with self._writer_lock:
            inc = self._incremental_write_state()
            return self._push_delta(inc, recorder=delta)

    def _push_delta(
        self, inc: IncrementalWriteState, recorder: ClientDelta
    ) -> StoreDelta:
        """Compile *recorder* into store DML and publish (lock held).

        :class:`~repro.errors.IvmError` (an update-view shape or a count
        invariant the delta rules cannot maintain exactly) falls back to
        a whole-state save of the already-mutated cached view — always
        correct, never an error surfaced to the caller.  Backend failures
        drop the cache so counts cannot drift from the store.
        """
        if recorder.empty:
            return StoreDelta()
        epoch = self._epoch
        try:
            store_delta, pending = push_client_delta(
                epoch.model, recorder, inc, self.writeplans
            )
        except IvmError:
            self._ivm_fallbacks += 1
            return self._fallback_save(inc)
        try:
            if not store_delta.empty:
                self._commit(
                    lambda: self.backend.apply_delta(store_delta),
                    epoch.model,
                    epoch.plan_cache,
                    fingerprint=epoch.fingerprint,
                    # the tentpole path: the signed store DML just
                    # computed propagates through every touched entry's
                    # operators — O(|Δ|) per maintained entry; the
                    # factory runs post-mutation, so to_store_state()
                    # is the new state the delta rules probe against
                    make_results=lambda: epoch.results.successor_for_delta(
                        store_delta,
                        self.backend.to_store_state(),
                        epoch.fingerprint,
                    ),
                )
        except BaseException:
            self._incremental = None
            raise
        inc.commit(pending)
        return store_delta

    def _fallback_save(self, inc: IncrementalWriteState) -> StoreDelta:
        """Whole-state save of the mutated cached view, then reseed counts."""
        epoch = self._epoch
        try:
            target = apply_update_views(
                epoch.model.views, inc.client_state, epoch.model.store_schema
            )
            delta = diff_store_states(self.backend.to_store_state(), target)
            if not delta.empty:
                written = [
                    name for name, td in delta.tables.items() if not td.empty
                ]
                self._commit(
                    lambda: self.backend.apply_delta(delta),
                    epoch.model,
                    epoch.plan_cache,
                    fingerprint=epoch.fingerprint,
                    make_results=lambda: epoch.results.successor_for_tables(
                        written, epoch.fingerprint
                    ),
                )
            inc.counts = seed_counts(epoch.model, inc.client_state)
        except BaseException:
            self._incremental = None
            raise
        return delta

    def evolve_many(
        self, smos: Sequence[Smo], label: Optional[str] = None
    ) -> StoreDelta:
        """Apply a batch of SMOs as one transaction and migrate the data.

        The whole batch compiles through
        :meth:`~repro.incremental.smo.IncrementalCompiler.compile_batch`,
        so the scheduler validates the *union* neighborhood of the
        composed delta once instead of once per SMO.  Migration = read
        the data through the *old* query views, embed the resulting
        client state into the evolved schema (the paper's ``f(c)``), and
        store it through the *new* update views; the Section 2.3
        soundness restriction guarantees this changes nothing for
        pre-existing data.  Everything — evolved model, migrated store,
        successor plan cache — is built *before* the publication window,
        so readers only ever race the short transactional commit.  On
        success a :class:`JournalEntry` is appended (making the step
        :meth:`undo`-able); on a validation abort nothing is published.
        """
        with self._writer_lock:
            smos = tuple(smos)
            epoch = self._epoch
            model = epoch.model
            old_client = self.load()
            batch = self._compiler.compile_batch(
                model,
                smos,
                workers=self.validation_workers,
                executor=self.validation_executor,
                shard_size=self.validation_shard_size,
            )
            evolved = batch.model
            migrated_client = old_client.embed_into(evolved.client_schema)
            new_store = apply_update_views(
                evolved.views, migrated_client, evolved.store_schema
            )
            store_before = self.backend.to_store_state()
            delta = diff_store_states(store_before, new_store)
            script = plan_migration(
                model.store_schema,
                evolved.store_schema,
                store_before,
                new_store,
            )
            entry = JournalEntry(
                label=label or "; ".join(smo.describe() for smo in smos),
                smos=batch.smos,
                delta=batch.delta,
                store_delta=delta,
                store_before=store_before,
                check_names=batch.check_names,
            )
            # Delta-scoped carry-over: the successor cache keeps every
            # plan the batch cannot affect, so untouched sets stay hot
            # across the swap (the neighborhood principle, serving side).
            next_plans = epoch.plan_cache.successor(
                batch.delta, evolved.mapping
            )
            next_fp = evolved.fingerprint()
            migration_tables = [
                name for name, td in delta.tables.items() if not td.empty
            ]
            self._commit(
                lambda: self.backend.migrate(
                    script, evolved.store_schema, new_store
                ),
                evolved,
                next_plans,
                fingerprint=next_fp,
                # results survive by the same neighborhood argument as
                # plans, then any table the migration itself rewrote is
                # dropped on top (Section 2.3 says pre-existing data is
                # unchanged, but the store delta is the ground truth)
                make_results=lambda: epoch.results.successor(
                    batch.delta, evolved.mapping, next_fp
                ).successor_for_tables(migration_tables, next_fp),
            )
            # writeplans for sets/assocs/tables the batch touched are
            # stale; untouched ones stay hot (write-side neighborhood
            # principle).  The cached counts key on constructed rows of
            # the *old* views, so they always reseed.
            self.writeplans.invalidate(batch.delta, evolved.mapping)
            self._incremental = None
            self.journal.append(entry)
            self._unvalidated_delta = self._unvalidated_delta.compose(
                batch.delta
            )
            return delta

    def evolve(self, smo: Smo) -> StoreDelta:
        """A batch of one: see :meth:`evolve_many`."""
        return self.evolve_many([smo], label=smo.describe())

    def undo(self) -> JournalEntry:
        """Roll back the most recent :meth:`evolve` / :meth:`evolve_many`.

        The model is restored by replaying the journal entry's *inverse*
        delta (not from a snapshot — exercising the invertibility of the
        recorded ops), and the store state from the entry's pre-migration
        snapshot.  Readers pinned on the undone epoch finish there;
        everyone else lands on the rolled-back epoch after one swap.
        """
        with self._writer_lock:
            if not self.journal:
                raise SmoError(
                    "nothing to undo: the session journal is empty"
                )
            epoch = self._epoch
            entry = self.journal[-1]
            inverse = entry.delta.inverse()
            restored = epoch.model.apply(inverse)
            next_plans = epoch.plan_cache.successor(
                inverse, restored.mapping
            )
            self._commit(
                lambda: self.backend.replace_contents(entry.store_before),
                restored,
                next_plans,
                # undo restores a *pre-migration data snapshot*: it also
                # reverts every save committed since, including ones in
                # tables the SMO batch never touched — no table-scoped
                # argument keeps an entry valid, so the tier clears
                make_results=epoch.results.empty_successor,
            )
            self.writeplans.invalidate(inverse, restored.mapping)
            self._incremental = None
            self.journal.pop()
            self._unvalidated_delta = self._unvalidated_delta.compose(inverse)
            return entry

    def replace_contents(self, state: StoreState) -> None:
        """Reset schema and data wholesale (bulk loads, tests).  The
        model is unchanged but every cached plan is dropped — a wholesale
        reset may swap the store schema under the plans' feet."""
        with self._writer_lock:
            self._incremental = None
            epoch = self._epoch
            self._commit(
                lambda: self.backend.replace_contents(state),
                epoch.model,
                PlanCache(epoch.plan_cache.max_plans),
                fingerprint=epoch.fingerprint,
                make_results=epoch.results.empty_successor,
            )

    # ------------------------------------------------------------------
    # Dry runs and validation
    # ------------------------------------------------------------------
    def plan(self, smos: Sequence[Smo]) -> EvolutionPlan:
        """Dry-run a batch: the delta it would emit and the checks it
        would schedule, without touching the engine's model or data."""
        return self._compiler.plan(self._epoch.model, smos)

    def migration_script(self, smos: Sequence[Smo]):
        """Dry-run the *store-side* migration of a batch, without
        mutating anything."""
        with self._writer_lock:
            smos = tuple(smos)
            model = self._epoch.model
            old_client = self.load()
            batch = self._compiler.compile_batch(model, smos)
            evolved = batch.model
            migrated_client = old_client.embed_into(evolved.client_schema)
            target = apply_update_views(
                evolved.views, migrated_client, evolved.store_schema
            )
            return plan_migration(
                model.store_schema,
                evolved.store_schema,
                self.backend.to_store_state(),
                target,
            )

    def validate(
        self,
        budget: Optional[WorkBudget] = None,
        workers: int = 1,
        executor: Optional[str] = None,
        symbolic: bool = True,
        scope: str = "full",
        shard_size: Optional[int] = None,
    ) -> ValidationReport:
        """Validate the current model through the engine cache.

        ``scope="full"`` runs every check of Algorithm 1.
        ``scope="delta"`` composes the deltas of every evolution (and
        undo) committed since the last successful ``validate`` — the
        Arenas-style composition of the journal's SMO history — and
        re-checks only the touched neighborhood of the *composed* delta:
        a hundred batches confined to one corner of the schema re-check
        that corner once, not a hundred times.  Either scope, on
        success, marks the model validated (the composition restarts
        empty).
        """
        if scope not in ("full", "delta"):
            raise ValueError(
                f"unknown validation scope {scope!r}; expected 'full' or 'delta'"
            )
        model = self._epoch.model
        pending = self._unvalidated_delta
        if scope == "delta":
            neighborhood = pending.touched_neighborhood(model.mapping)
            report, _ = validate_delta_neighborhood(
                model.mapping,
                model.views,
                neighborhood,
                budget,
                workers=workers,
                executor=executor,
                cache=self.validation_cache,
                symbolic=symbolic,
                shard_size=shard_size,
            )
        else:
            report = validate_mapping(
                model.mapping,
                model.views,
                budget,
                workers=workers,
                executor=executor,
                cache=self.validation_cache,
                symbolic=symbolic,
                shard_size=shard_size,
            )
        # Success: everything up to the snapshot we validated is covered.
        # (A writer that slipped in mid-validation replaced the attribute,
        # so only reset when our snapshot is still the live composition.)
        if self._unvalidated_delta is pending:
            self._unvalidated_delta = MappingDelta()
        return report

    @property
    def unvalidated_delta(self) -> MappingDelta:
        """The composed delta awaiting the next ``validate`` (read-only)."""
        return self._unvalidated_delta

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        return EngineStats(
            epoch_id=self._epoch.epoch_id,
            epochs_published=self._epochs_published,
            queries=self._queries,
            read_retries=self._read_retries,
            serialized_reads=self._serialized_reads,
            torn_reads_served=self._torn_reads_served,
            ivm_fallbacks=self._ivm_fallbacks,
        )

    def close(self) -> None:
        self.backend.close()
        self.validation_cache.close()

    def __str__(self) -> str:
        return f"SessionEngine({self._epoch}, {self.backend.name})"
