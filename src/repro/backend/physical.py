"""Compiled physical plans: store algebra lowered to Python closures.

The interpreter (:mod:`repro.algebra.evaluate`) re-walks the algebra tree
for every request — re-deciding node types, re-deriving join column
structure, re-building join indexes, and re-dispatching
``evaluate_condition`` per row.  For a *cached* plan all of that work is
shape-invariant, so this module does it once, at plan-compile time
(OpenIVM's "compile the declarative plan down to directly executable
form" applied to the serving path):

* **predicate compilation** — conditions become predicate closures over
  row dicts, memoized process-wide by hash-consed condition identity.
  Extracted :class:`~repro.query.plancache.Param` constants are fetched
  from the bound parameter vector at call time, so binding a warm plan
  is free: the same compiled plan serves every parameter vector.
* **predicate pushdown** — pushable conjuncts (comparisons and IS NOT
  NULL tests: both are false on NULL, and row-local) sink through
  selects, projections (column renames; pinned constants fold at compile
  time), both sides of joins on join columns, preserved sides of outer
  joins, and into union branches.  A pushed conjunct over a column only
  the *non-preserved* side of an outer join produces can never hold on a
  padded row, so the join degrades (full → one-sided → inner) before
  lowering — this is what turns a key probe over the Figure 1
  full-outer-join view into point lookups.
* **index probes** — ``σ (equality conjuncts) (TableScan)`` lowers to a
  probe of a backend-maintained hash index
  (:meth:`MemoryBackend.index_for`), and a join whose right input is a
  bare table scan reuses the backend's shared join-key index instead of
  rebuilding one per execution.
* **fusion and sharing** — projections compile their item list to a
  single row-rebuild pass, unions pad in one pass (and skip padding when
  a branch already has the union's columns), and lowered nodes are
  shared *across the branches of one plan*: every unfolded branch of an
  entity query selects over the same view-query object, so branches
  whose pushed conjuncts agree evaluate the shared subtree once per
  execution (a per-run memo keyed by node identity).

Execution semantics are inherited, not re-implemented: predicates bottom
out in :func:`~repro.algebra.conditions.compare_values`, joins run
through the shared :func:`~repro.algebra.evaluate.join_rows` kernel, and
per-branch de-duplication matches ``evaluate_query`` exactly — the
differential suite (:mod:`tests.test_compiled_plans`) holds the compiled
path byte-identical to the interpreter.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TrueCond,
    and_,
    compare_values,
)
from repro.algebra.evaluate import (
    TYPE_TAG,
    EvaluationContext,
    JoinSpec,
    RowDict,
    join_rows,
    join_spec,
    output_columns,
)
from repro.algebra.queries import (
    Col,
    Const,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    TableScan,
    UnionAll,
)
from repro.errors import EvaluationError
from repro.relational.schema import StoreSchema

#: a compiled predicate: (row, bound parameter vector) -> bool
Predicate = Callable[[RowDict, Tuple[object, ...]], bool]


def _is_param(value: object) -> bool:
    from repro.query.plancache import Param

    return isinstance(value, Param)


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------

#: condition -> compiled predicate; hash-consing makes structurally equal
#: conditions the same key, so one shape's predicates compile once even
#: across plans.  Weak keys: dead conditions do not pin the table.
_PREDICATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compile_predicate(condition: Condition) -> Predicate:
    """The memoized predicate closure for *condition*."""
    try:
        cached = _PREDICATES.get(condition)
    except TypeError:  # unhashable (never for real conditions): no memo
        return _compile(condition)
    if cached is None:
        cached = _compile(condition)
        _PREDICATES[condition] = cached
    return cached


def _comparison_predicate(attr: str, op: str, const: object) -> Predicate:
    """One comparison atom; NULL and missing attributes are false, like
    the interpreter's KeyError/None handling."""
    param_index = const.index if _is_param(const) else None
    if op == "=":
        if param_index is None:
            def pred(row, params):
                value = row.get(attr)
                return value is not None and value == const
        else:
            def pred(row, params):
                value = row.get(attr)
                return value is not None and value == params[param_index]
        return pred
    if op == "!=":
        if param_index is None:
            def pred(row, params):
                value = row.get(attr)
                return value is not None and value != const
        else:
            def pred(row, params):
                value = row.get(attr)
                return value is not None and value != params[param_index]
        return pred
    if param_index is None:
        def pred(row, params):
            value = row.get(attr)
            return value is not None and compare_values(value, op, const)
    else:
        def pred(row, params):
            value = row.get(attr)
            return value is not None and compare_values(
                value, op, params[param_index]
            )
    return pred


def _compile(condition: Condition) -> Predicate:
    if isinstance(condition, TrueCond):
        return lambda row, params: True
    if isinstance(condition, FalseCond):
        return lambda row, params: False
    if isinstance(condition, IsNull):
        attr = condition.attr
        # missing attribute -> false; present NULL -> true (interpreter:
        # KeyError -> false, `value is None` otherwise)
        return lambda row, params: attr in row and row[attr] is None
    if isinstance(condition, IsNotNull):
        attr = condition.attr
        return lambda row, params: row.get(attr) is not None
    if isinstance(condition, Comparison):
        return _comparison_predicate(condition.attr, condition.op, condition.const)
    if isinstance(condition, (IsOf, IsOfOnly)):
        # store tuples carry no type tag; match the interpreter's error
        def raise_no_tag(row, params):
            raise EvaluationError(
                "tuple has no type tag; IS OF is client-side only"
            )
        return raise_no_tag
    if isinstance(condition, And):
        parts = tuple(compile_predicate(op) for op in condition.operands)
        if len(parts) == 2:
            first, second = parts
            return lambda row, params: (
                first(row, params) and second(row, params)
            )
        return lambda row, params: all(p(row, params) for p in parts)
    if isinstance(condition, Or):
        parts = tuple(compile_predicate(op) for op in condition.operands)
        if len(parts) == 2:
            first, second = parts
            return lambda row, params: (
                first(row, params) or second(row, params)
            )
        return lambda row, params: any(p(row, params) for p in parts)
    if isinstance(condition, Not):
        inner = compile_predicate(condition.operand)
        return lambda row, params: not inner(row, params)
    raise EvaluationError(f"unknown condition node {condition!r}")


def _conjuncts(condition: Condition) -> List[Condition]:
    if isinstance(condition, TrueCond):
        return []
    if isinstance(condition, And):
        return list(condition.operands)
    return [condition]


def _pushable(condition: Condition) -> bool:
    """Conjuncts safe to sink below the node they select over.

    Comparisons and IS NOT NULL are row-local, mention one attribute,
    and are *false on NULL* — the property that licenses pushing through
    NULL-padding operators (outer joins, union padding): a padded row
    can never satisfy them, so filtering the producing side first drops
    exactly the rows the original filter would have dropped.
    """
    return isinstance(condition, (Comparison, IsNotNull))


# ---------------------------------------------------------------------------
# Physical nodes
# ---------------------------------------------------------------------------

class _Run:
    """One execution: backend + bound parameters + the per-run memo that
    lets plan branches share lowered subtree results."""

    __slots__ = ("backend", "params", "memo")

    def __init__(self, backend, params: Tuple[object, ...]) -> None:
        self.backend = backend
        self.params = params
        self.memo: Dict[int, List[RowDict]] = {}


class PhysNode:
    """A lowered operator; ``rows`` memoizes per run (results are shared
    and must never be mutated by consumers)."""

    __slots__ = ("columns",)

    def __init__(self, columns: Tuple[str, ...]) -> None:
        self.columns = columns

    def rows(self, run: _Run) -> List[RowDict]:
        key = id(self)
        cached = run.memo.get(key)
        if cached is None:
            cached = self._rows(run)
            run.memo[key] = cached
        return cached

    def _rows(self, run: _Run) -> List[RowDict]:
        raise NotImplementedError


class _Empty(PhysNode):
    """A subtree statically known to produce no rows (a pushed conjunct
    references a column the subtree cannot produce, or folds to FALSE)."""

    __slots__ = ()

    def _rows(self, run: _Run) -> List[RowDict]:
        return []


class _Scan(PhysNode):
    __slots__ = ("table_name",)

    def __init__(self, table_name: str, columns: Tuple[str, ...]) -> None:
        super().__init__(columns)
        self.table_name = table_name

    def _rows(self, run: _Run) -> List[RowDict]:
        return run.backend.physical_rows(self.table_name)


class _Probe(PhysNode):
    """Equality-key lookup against a backend hash index: O(matches)."""

    __slots__ = ("table_name", "key_columns", "key_values")

    def __init__(
        self,
        table_name: str,
        key_columns: Tuple[str, ...],
        key_values: Tuple[Callable[[Tuple[object, ...]], object], ...],
        columns: Tuple[str, ...],
    ) -> None:
        super().__init__(columns)
        self.table_name = table_name
        self.key_columns = key_columns
        self.key_values = key_values

    def _rows(self, run: _Run) -> List[RowDict]:
        key = tuple(fetch(run.params) for fetch in self.key_values)
        if any(v is None for v in key):
            return []  # = NULL matches nothing; the index skips NULLs too
        index = run.backend.index_for(self.table_name, self.key_columns)
        return index.get(key, [])


class _Filter(PhysNode):
    __slots__ = ("source", "predicate")

    def __init__(self, source: PhysNode, predicate: Predicate) -> None:
        super().__init__(source.columns)
        self.source = source
        self.predicate = predicate

    def _rows(self, run: _Run) -> List[RowDict]:
        predicate = self.predicate
        params = run.params
        return [row for row in self.source.rows(run) if predicate(row, params)]


class _ProjectNode(PhysNode):
    __slots__ = ("source", "spec", "missing")

    def __init__(
        self,
        source: PhysNode,
        items,
        columns: Tuple[str, ...],
    ) -> None:
        super().__init__(columns)
        self.source = source
        #: (output, input column or None, constant) per item, precompiled
        self.spec = tuple(
            (item.output, item.expr.name, None)
            if isinstance(item.expr, Col)
            else (item.output, None, item.expr.value)
            for item in items
        )
        self.missing = tuple(
            name
            for _, name, _ in self.spec
            if name is not None and name not in source.columns
        )

    def _rows(self, run: _Run) -> List[RowDict]:
        rows = self.source.rows(run)
        if rows and self.missing:  # interpreter raises only if rows flow
            name = self.missing[0]
            keys = sorted(k for k in rows[0] if k != TYPE_TAG)
            raise EvaluationError(
                f"projection references missing column {name!r} "
                f"(row has {keys})"
            )
        spec = self.spec
        return [
            {out: (row[name] if name is not None else value)
             for out, name, value in spec}
            for row in rows
        ]


class _JoinNode(PhysNode):
    __slots__ = ("left", "right", "spec", "left_pad", "right_pad", "index_key")

    def __init__(
        self,
        left: PhysNode,
        right: PhysNode,
        spec: JoinSpec,
        left_pad: bool,
        right_pad: bool,
        columns: Tuple[str, ...],
    ) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        self.spec = spec
        self.left_pad = left_pad
        self.right_pad = right_pad
        #: (table, join columns) when the right input is a bare scan —
        #: the backend's shared index then replaces a per-run build
        self.index_key = (
            (right.table_name, spec.join_columns)
            if isinstance(right, _Scan) and spec.join_columns
            else None
        )

    def _rows(self, run: _Run) -> List[RowDict]:
        left_rows = self.left.rows(run)
        if self.index_key is not None:
            index = run.backend.index_for(*self.index_key)
            # the right row list is only needed to emit the full-outer
            # tail; a plain or left-outer probe never materializes it
            right_rows = self.right.rows(run) if self.right_pad else ()
        else:
            index = None
            right_rows = self.right.rows(run)
        return join_rows(
            left_rows,
            right_rows,
            self.spec,
            left_pad=self.left_pad,
            right_pad=self.right_pad,
            index=index,
        )


class _UnionNode(PhysNode):
    __slots__ = ("branches",)

    def __init__(
        self, branches: Tuple[PhysNode, ...], columns: Tuple[str, ...]
    ) -> None:
        super().__init__(columns)
        self.branches = branches

    def _rows(self, run: _Run) -> List[RowDict]:
        columns = self.columns
        rows: List[RowDict] = []
        for branch in self.branches:
            branch_rows = branch.rows(run)
            if branch.columns == columns:
                rows.extend(branch_rows)  # already padded-shaped
            else:
                rows.extend(
                    {c: row.get(c) for c in columns} for row in branch_rows
                )
        return rows


# ---------------------------------------------------------------------------
# Lowering (with pushdown)
# ---------------------------------------------------------------------------

class _SchemaContext(EvaluationContext):
    """Static column information only — lowering never touches rows."""

    def __init__(self, schema: StoreSchema) -> None:
        self.schema = schema

    def scan_columns(self, leaf: Query) -> Tuple[str, ...]:
        if isinstance(leaf, TableScan):
            return self.schema.table(leaf.table_name).column_names
        raise EvaluationError(f"physical plans cannot scan {leaf!r}")


def _const_fetcher(const: object) -> Callable[[Tuple[object, ...]], object]:
    if _is_param(const):
        index = const.index
        return lambda params: params[index]
    return lambda params: const


class _Lowerer:
    """Lowers query trees to physical nodes, caching by (source node
    identity, pushed conjunct set) so plan branches share subtrees."""

    def __init__(self, schema: StoreSchema) -> None:
        self.schema = schema
        self._context = _SchemaContext(schema)
        #: (id(query), conjunct set) -> (query kept alive, node)
        self._cache: Dict[Tuple[int, frozenset], Tuple[Query, PhysNode]] = {}
        self._columns: Dict[int, Tuple[Query, Tuple[str, ...]]] = {}

    def columns(self, query: Query) -> Tuple[str, ...]:
        cached = self._columns.get(id(query))
        if cached is None:
            cached = (query, output_columns(query, self._context))
            self._columns[id(query)] = cached
        return cached[1]

    def lower(self, query: Query, conjuncts: Tuple[Condition, ...]) -> PhysNode:
        key = (id(query), frozenset(conjuncts))
        cached = self._cache.get(key)
        if cached is not None:
            return cached[1]
        node = self._lower(query, conjuncts)
        self._cache[key] = (query, node)
        return node

    # -- per-node rules ------------------------------------------------
    def _lower(self, query: Query, cs: Tuple[Condition, ...]) -> PhysNode:
        if isinstance(query, Select):
            return self._lower_select(query, cs)
        if isinstance(query, TableScan):
            return self._lower_scan(query, cs)
        if isinstance(query, Project):
            return self._lower_project(query, cs)
        if isinstance(query, (Join, LeftOuterJoin, FullOuterJoin)):
            return self._lower_join(query, cs)
        if isinstance(query, UnionAll):
            return self._lower_union(query, cs)
        raise EvaluationError(f"cannot lower query node {query!r}")

    def _lower_select(self, query: Select, cs: Tuple[Condition, ...]) -> PhysNode:
        parts = _conjuncts(query.condition)
        pushed = list(cs)
        residual = []
        for part in parts:
            if isinstance(part, FalseCond):
                return _Empty(self.columns(query))
            (pushed if _pushable(part) else residual).append(part)
        child = self.lower(query.source, tuple(pushed))
        if residual:
            return _Filter(child, compile_predicate(and_(*residual)))
        return child

    def _lower_scan(self, query: TableScan, cs: Tuple[Condition, ...]) -> PhysNode:
        columns = self.schema.table(query.table_name).column_names
        column_set = set(columns)
        if any(atom.attr not in column_set for atom in cs):
            # a conjunct over a column this table lacks is false for
            # every row (interpreter: KeyError -> false)
            return _Empty(columns)
        eq_atoms: Dict[str, Comparison] = {}
        residual: List[Condition] = []
        for atom in cs:
            if (
                isinstance(atom, Comparison)
                and atom.op == "="
                and atom.attr not in eq_atoms
            ):
                eq_atoms[atom.attr] = atom
            else:
                residual.append(atom)
        node: PhysNode
        if eq_atoms:
            key_columns = tuple(sorted(eq_atoms))
            fetchers = tuple(
                _const_fetcher(eq_atoms[c].const) for c in key_columns
            )
            node = _Probe(query.table_name, key_columns, fetchers, columns)
        else:
            node = _Scan(query.table_name, columns)
        if residual:
            node = _Filter(node, compile_predicate(and_(*residual)))
        return node

    def _lower_project(self, query: Project, cs: Tuple[Condition, ...]) -> PhysNode:
        items = {item.output: item for item in query.items}
        child_cs: List[Condition] = []
        residual: List[Condition] = []
        for atom in cs:
            item = items.get(atom.attr)
            if item is None:
                # output rows carry exactly the projected columns, so
                # the atom is false on every row
                return _Empty(query.output_names)
            expr = item.expr
            if isinstance(expr, Col):
                if isinstance(atom, IsNotNull):
                    child_cs.append(IsNotNull(expr.name))
                else:
                    child_cs.append(Comparison(expr.name, atom.op, atom.const))
                continue
            # pinned constant output: fold the atom now when possible
            value = expr.value
            if isinstance(atom, IsNotNull):
                holds = value is not None
            elif _is_param(atom.const):
                residual.append(atom)  # needs the runtime binding
                continue
            else:
                try:
                    holds = value is not None and compare_values(
                        value, atom.op, atom.const
                    )
                except EvaluationError:
                    residual.append(atom)  # raise at run time, per row
                    continue
            if not holds:
                return _Empty(query.output_names)
            # holds for every produced row: the conjunct dissolves
        child = self.lower(query.source, tuple(child_cs))
        node: PhysNode = _ProjectNode(child, query.items, query.output_names)
        if residual:
            node = _Filter(node, compile_predicate(and_(*residual)))
        return node

    def _lower_join(self, query, cs: Tuple[Condition, ...]) -> PhysNode:
        columns = self.columns(query)
        left_columns = self.columns(query.left)
        right_columns = self.columns(query.right)
        spec = join_spec(left_columns, right_columns, query.on)
        left_pad = isinstance(query, (LeftOuterJoin, FullOuterJoin))
        right_pad = isinstance(query, FullOuterJoin)
        left_set = set(left_columns)
        right_set = set(right_columns)
        join_columns = set(spec.join_columns)
        coalesced = set(spec.coalesced)
        # pass 1: outer-join reduction.  A pushable conjunct is false on
        # NULL, so one over a column only one side produces kills every
        # row padded on the other side — that padding is dead.
        for atom in cs:
            attr = atom.attr
            if attr not in left_set and attr not in right_set:
                return _Empty(columns)
            if right_pad and attr in left_set and attr not in right_set:
                right_pad = False
            if left_pad and attr in right_set and attr not in left_set:
                left_pad = False
        # pass 2: routing, against the reduced padding flags.  Join
        # columns go to both sides (matched rows agree on them, padded
        # rows carry the producing side's value); single-side columns go
        # to their producer (its padding, if any, was just eliminated);
        # COALESCE-merged columns cannot move below the merge.
        left_cs: List[Condition] = []
        right_cs: List[Condition] = []
        residual: List[Condition] = []
        for atom in cs:
            attr = atom.attr
            if attr in join_columns:
                left_cs.append(atom)
                right_cs.append(atom)
            elif attr in coalesced:
                residual.append(atom)
            elif attr in left_set:
                left_cs.append(atom)
            else:
                right_cs.append(atom)
        left_node = self.lower(query.left, tuple(left_cs))
        right_node = self.lower(query.right, tuple(right_cs))
        node: PhysNode = _JoinNode(
            left_node, right_node, spec, left_pad, right_pad, columns
        )
        if residual:
            node = _Filter(node, compile_predicate(and_(*residual)))
        return node

    def _lower_union(self, query: UnionAll, cs: Tuple[Condition, ...]) -> PhysNode:
        columns = self.columns(query)
        column_set = set(columns)
        if any(atom.attr not in column_set for atom in cs):
            return _Empty(columns)
        branches: List[PhysNode] = []
        for branch in query.branches:
            branch_columns = self.columns(branch)
            branch_set = set(branch_columns)
            if any(atom.attr not in branch_set for atom in cs):
                # this branch pads the atom's column with NULL: no row
                # of it can satisfy the conjunct
                branches.append(_Empty(branch_columns))
            else:
                branches.append(self.lower(branch, cs))
        return _UnionNode(tuple(branches), columns)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

class PhysicalPlan:
    """One compiled branch: a physical operator tree."""

    __slots__ = ("root",)

    def __init__(self, root: PhysNode) -> None:
        self.root = root


class PhysicalPlanSet:
    """All branches of one cached plan, compiled together so they share
    lowered subtrees (and, per execution, subtree results)."""

    __slots__ = ("branches",)

    def __init__(self, branches: Tuple[PhysicalPlan, ...]) -> None:
        self.branches = branches

    def execute(self, backend, params: Tuple[object, ...]) -> List[List[RowDict]]:
        """Per-branch result rows, de-duplicated exactly like
        ``evaluate_query`` (set semantics per branch)."""
        run = _Run(backend, params)
        results: List[List[RowDict]] = []
        for plan in self.branches:
            seen = set()
            unique: List[RowDict] = []
            for row in plan.root.rows(run):
                key = tuple(
                    sorted((k, v) for k, v in row.items() if k != TYPE_TAG)
                )
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            results.append(unique)
        return results


def compile_plan(
    branch_queries: Sequence[Query], schema: StoreSchema
) -> PhysicalPlanSet:
    """Lower the store queries of a plan's branches into one
    :class:`PhysicalPlanSet` (shared lowering cache across branches)."""
    lowerer = _Lowerer(schema)
    return PhysicalPlanSet(
        tuple(PhysicalPlan(lowerer.lower(q, ())) for q in branch_queries)
    )
