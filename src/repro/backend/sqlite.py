"""The SQLite store backend: a live database behind the protocol.

Queries unfolded from the client run as generated SQL *inside the
engine* (:mod:`repro.backend.sqlgen`); SaveChanges deltas and migration
scripts execute inside a single transaction with foreign-key checking
deferred to commit, so a failed batch rolls back to exactly the prior
state; and PK/FK constraint checking is delegated to SQLite's native
enforcement — the runtime no longer re-verifies what the engine
guarantees (Section 1's division of labour between the ORM and the
DBMS).
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.queries import Query
from repro.backend.base import ReadView, StoreBackend
from repro.backend.pool import ConnectionPool, PooledConnection, ReadWriteGate
from repro.backend.ddl import (
    create_table_sql,
    creation_order,
    drop_order,
    schema_ddl,
)
from repro.backend.sqlgen import (
    CompiledSql,
    SqlCompiler,
    decode_value,
    grouped_delta_statements,
    quote,
)
from repro.errors import SchemaError, SmoError, ValidationError
from repro.query.dml import StoreDelta
from repro.query.dml import apply_delta as apply_store_delta
from repro.relational.constraints import ConstraintViolation
from repro.relational.instances import Row, StoreState
from repro.relational.schema import StoreSchema

#: FULL OUTER JOIN needs SQLite >= 3.39 (2022); guard with a clear error.
SUPPORTS_FULL_OUTER_JOIN = sqlite3.sqlite_version_info >= (3, 39, 0)

#: distinguishes shared-cache in-memory databases across backends
_MEMORY_DB_IDS = itertools.count(1)


@dataclass
class StatementCacheStats:
    """Hit/miss/eviction counters of the prepared-statement cache.

    Totals are split by traffic class: SELECTs (query serving) versus
    DML (SaveChanges deltas).  A steady-state warm serving workload
    should show near-100% SELECT hits; DML misses are the one-time
    preparation of each distinct per-table statement text.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    select_hits: int = 0
    select_misses: int = 0
    dml_hits: int = 0
    dml_misses: int = 0

    def __str__(self) -> str:
        return (
            f"StatementCacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, entries={self.entries}, "
            f"select={self.select_hits}/{self.select_hits + self.select_misses}, "
            f"dml={self.dml_hits}/{self.dml_hits + self.dml_misses})"
        )


class StatementCache:
    """A bounded LRU of live cursors, keyed by SQL text.

    Each cursor keeps its most recent statement prepared, so re-executing
    a cached text skips cursor allocation and lets ``sqlite3`` reuse the
    compiled statement; SQLite transparently re-prepares after a schema
    change, and the backend clears the cache outright on migrations.
    Statements run strictly sequentially on one connection (fetchall
    before reuse), so cursor sharing per text is safe.
    """

    def __init__(self, connection: sqlite3.Connection, capacity: int = 128) -> None:
        self._conn = connection
        self.capacity = capacity
        self._cursors: "OrderedDict[str, sqlite3.Cursor]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.select_hits = 0
        self.select_misses = 0
        self.dml_hits = 0
        self.dml_misses = 0

    def _cursor(self, text: str, kind: str) -> sqlite3.Cursor:
        cursor = self._cursors.get(text)
        if cursor is not None:
            self.hits += 1
            if kind == "dml":
                self.dml_hits += 1
            else:
                self.select_hits += 1
            self._cursors.move_to_end(text)
            return cursor
        self.misses += 1
        if kind == "dml":
            self.dml_misses += 1
        else:
            self.select_misses += 1
        cursor = self._conn.cursor()
        self._cursors[text] = cursor
        while len(self._cursors) > self.capacity:
            _, evicted = self._cursors.popitem(last=False)
            evicted.close()
            self.evictions += 1
        return cursor

    def execute(
        self, text: str, params: Sequence[object] = (), kind: str = "select"
    ) -> sqlite3.Cursor:
        cursor = self._cursor(text, kind)
        cursor.execute(text, tuple(params))
        return cursor

    def executemany(
        self, text: str, rows: Sequence[Sequence[object]], kind: str = "dml"
    ) -> sqlite3.Cursor:
        cursor = self._cursor(text, kind)
        cursor.executemany(text, rows)
        return cursor

    def clear(self) -> None:
        for cursor in self._cursors.values():
            try:
                cursor.close()
            except sqlite3.ProgrammingError:
                pass  # connection already closed; cursor died with it
        self._cursors.clear()

    def reset_stats(self) -> None:
        """Zero all counters (benchmarks isolate steady-state phases)."""
        self.hits = self.misses = self.evictions = 0
        self.select_hits = self.select_misses = 0
        self.dml_hits = self.dml_misses = 0

    def stats(self) -> StatementCacheStats:
        return StatementCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._cursors),
            select_hits=self.select_hits,
            select_misses=self.select_misses,
            dml_hits=self.dml_hits,
            dml_misses=self.dml_misses,
        )


class SqliteBackend(StoreBackend):
    """Store schema + rows held by a SQLite connection.

    Thread model: the *main* connection (the writer's) is guarded by an
    internal re-entrant lock — concurrent callers of any mutating or
    main-connection method serialize on it (``check_same_thread`` is off
    so the epoch engine's writer thread may differ from the constructing
    thread).  With ``pool_size`` > 0 the backend additionally owns a
    reader-connection pool: :meth:`read_view` leases one pooled
    connection (with its private statement cache) per request, so
    readers never touch the main connection and never share cursors.
    Pooled in-memory databases use SQLite's shared-cache URI form so
    every connection sees the same data; the main connection anchors the
    database for its whole lifetime.
    """

    name = "sqlite"
    prepares_sql = True

    def __init__(
        self,
        schema: StoreSchema,
        db_path: Optional[str] = None,
        connection: Optional[sqlite3.Connection] = None,
        statement_cache_size: int = 128,
        pool_size: int = 0,
    ) -> None:
        self._schema = schema
        self.db_path = db_path or ":memory:"
        self.pool_size = pool_size
        self._uri: Optional[str] = None
        if connection is not None:
            self._conn = connection
        else:
            if self.db_path == ":memory:" and pool_size:
                # a plain :memory: database is private per connection;
                # pooled readers need the shared-cache URI form
                self._uri = (
                    f"file:repro-mem-{next(_MEMORY_DB_IDS)}"
                    "?mode=memory&cache=shared"
                )
                self._conn = sqlite3.connect(
                    self._uri, uri=True, check_same_thread=False
                )
            else:
                self._conn = sqlite3.connect(
                    self.db_path, check_same_thread=False
                )
        self._conn.isolation_level = None  # explicit BEGIN/COMMIT below
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.execute("PRAGMA busy_timeout = 10000")
        #: serializes every use of the main connection (writers, loads)
        self._conn_lock = threading.RLock()
        #: drains in-flight pooled readers before mutations (shared-cache
        #: SQLite raises non-retryable SQLITE_LOCKED on DDL vs reader races)
        self._gate = ReadWriteGate()
        self._closed = False
        self._state_cache: Optional[StoreState] = None
        self._statements = StatementCache(self._conn, statement_cache_size)
        self._statement_cache_size = statement_cache_size
        self._pool: Optional[ConnectionPool] = (
            ConnectionPool(
                self._make_reader, self._close_reader, max_size=pool_size
            )
            if pool_size
            else None
        )
        self._ensure_tables()

    # ------------------------------------------------------------------
    @property
    def schema(self) -> StoreSchema:
        return self._schema

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    # -- reader pool ---------------------------------------------------
    def _make_reader(self) -> PooledConnection:
        if self._uri is not None:
            conn = sqlite3.connect(self._uri, uri=True, check_same_thread=False)
        elif self.db_path == ":memory:":
            raise SchemaError(
                "cannot pool readers over a private :memory: database; "
                "construct the backend with pool_size > 0"
            )
        else:
            conn = sqlite3.connect(self.db_path, check_same_thread=False)
        conn.isolation_level = None
        conn.execute("PRAGMA busy_timeout = 10000")
        return PooledConnection(
            conn, StatementCache(conn, self._statement_cache_size)
        )

    @staticmethod
    def _close_reader(leased: PooledConnection) -> None:
        leased.statements.clear()
        leased.connection.close()

    def read_view(self) -> "SqliteReadView":
        return SqliteReadView(self)

    def _existing_tables(self) -> set:
        cursor = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
        return {row[0] for row in cursor.fetchall()}

    def _ensure_tables(self) -> None:
        """Create any schema table the database file does not yet hold.

        Attaching to a pre-existing database keeps its data; tables are
        matched by name (the DDL generator is deterministic, so a file
        produced by this backend always matches).
        """
        existing = self._existing_tables()
        missing = [t for t in self._schema.tables if t.name not in existing]
        if not missing:
            return
        with self._transaction("initialize schema"):
            for table in creation_order(missing):
                self._conn.execute(create_table_sql(table))

    # -- transactions --------------------------------------------------
    def _transaction(self, label: str) -> "_Transaction":
        return _Transaction(self._conn, label)

    def _invalidate(self) -> None:
        self._state_cache = None

    # -- reading -------------------------------------------------------
    def rows(self, table_name: str) -> Tuple[Row, ...]:
        table = self._schema.table(table_name)
        bases = {c.name: c.domain.base for c in table.columns}
        names = table.column_names
        select_list = ", ".join(quote(c) for c in names)
        with self._conn_lock:
            cursor = self._conn.execute(
                f"SELECT {select_list} FROM {quote(table_name)}"
            )
            fetched = cursor.fetchall()
        result: List[Row] = []
        for values in fetched:
            decoded = tuple(
                sorted(
                    (name, decode_value(value, bases[name]))
                    for name, value in zip(names, values)
                )
            )
            result.append(decoded)
        return tuple(result)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        if not SUPPORTS_FULL_OUTER_JOIN and _has_full_outer(query):
            raise SchemaError(
                "this SQLite lacks FULL OUTER JOIN (needs >= 3.39); "
                "use the memory backend for partitioned views"
            )
        compiled = SqlCompiler(self._schema).compile(query)
        return self.run_compiled(compiled, compiled.params)

    def run_compiled(
        self, compiled: CompiledSql, params: Optional[Tuple[object, ...]] = None
    ) -> List[Dict[str, object]]:
        """Execute an already-compiled SELECT (cached plans re-enter here
        with fresh parameter bindings) through the statement cache."""
        with self._conn_lock:
            return execute_compiled(self._statements, compiled, params)

    def statement_cache_stats(self) -> StatementCacheStats:
        return self._statements.stats()

    def to_store_state(self) -> StoreState:
        with self._conn_lock:
            if self._state_cache is None:
                state = StoreState(self._schema)
                for table in self._schema.tables:
                    for row in self.rows(table.name):
                        state.add_row(table.name, row)
                self._state_cache = state
            return self._state_cache

    # -- writing -------------------------------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        # Identical-text runs (per-table deletes/updates/inserts) execute
        # as one prepared statement via executemany instead of per row.
        groups = grouped_delta_statements(delta, self._schema)
        with self._gate.write(), self._conn_lock:
            try:
                with self._transaction("save-changes"):
                    for text, rows in groups:
                        if len(rows) == 1:
                            self._statements.execute(text, rows[0], kind="dml")
                        else:
                            self._statements.executemany(text, rows, kind="dml")
            except sqlite3.IntegrityError as exc:
                raise ValidationError(
                    f"update would violate store constraints: {exc}",
                    check="save-changes",
                ) from exc
            # maintain the state cache incrementally: an applied delta
            # touches exactly the rows it names, so the cached state can
            # absorb it without re-reading the database (the incremental
            # write path would otherwise pay a full scan per save here)
            if self._state_cache is not None:
                self._state_cache = apply_store_delta(self._state_cache, delta)

    def migrate(self, script, new_schema: StoreSchema, target: StoreState) -> None:
        with self._gate.write(), self._conn_lock:
            self._migrate_locked(script, new_schema, target)

    def _migrate_locked(
        self, script, new_schema: StoreSchema, target: StoreState
    ) -> None:
        # Table rebuilds (drop parent + rename twin) defeat SQLite's
        # deferred-FK counters, so this follows SQLite's documented
        # schema-change procedure instead: FK enforcement off for the
        # transaction, an explicit whole-database ``foreign_key_check``
        # before COMMIT, and rollback if anything dangles.
        self._conn.execute("PRAGMA foreign_keys = OFF")
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for step in script.steps:
                    self._conn.execute(
                        step.statement.text, step.statement.params
                    )
                dangling = self._conn.execute(
                    "PRAGMA foreign_key_check"
                ).fetchall()
                if dangling:
                    table, rowid, ref_table, _ = dangling[0]
                    raise sqlite3.IntegrityError(
                        f"FOREIGN KEY constraint failed "
                        f"({table} row {rowid} -> {ref_table})"
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        except sqlite3.IntegrityError as exc:
            raise ValidationError(
                f"migration would violate store constraints: {exc}",
                check="migration",
            ) from exc
        except sqlite3.Error as exc:
            raise SmoError(f"migration script failed: {exc}") from exc
        finally:
            self._conn.execute("PRAGMA foreign_keys = ON")
        self._schema = new_schema
        self._statements.clear()  # prepared statements may span DDL'd tables
        self._invalidate()

    def replace_contents(self, state: StoreState) -> None:
        """Reset the database to exactly *state* (schema included)."""
        with self._gate.write(), self._conn_lock:
            self._replace_contents_locked(state)

    def _replace_contents_locked(self, state: StoreState) -> None:
        # FK enforcement cannot be toggled mid-transaction; drops are
        # ordered instead so enforcement can stay on throughout.
        with self._transaction("reset"):
            existing = self._existing_tables()
            known = [t for t in self._schema.tables if t.name in existing]
            for table in drop_order(known):
                self._conn.execute(f"DROP TABLE {quote(table.name)}")
                existing.discard(table.name)
            for name in sorted(existing):  # tables of an older schema
                self._conn.execute(f"DROP TABLE {quote(name)}")
            for statement in schema_ddl(state.schema):
                self._conn.execute(statement)
            for table in creation_order(state.schema.tables):
                rows = state.rows(table.name)
                if not rows:
                    continue
                names = [name for name, _ in rows[0]]
                columns = ", ".join(quote(n) for n in names)
                marks = ", ".join("?" for _ in names)
                self._conn.executemany(
                    f"INSERT INTO {quote(table.name)} ({columns}) "
                    f"VALUES ({marks})",
                    [tuple(value for _, value in row) for row in rows],
                )
        self._schema = state.schema
        self._statements.clear()
        self._invalidate()

    # -- integrity -----------------------------------------------------
    def check_constraints(self) -> List[ConstraintViolation]:
        """Native enforcement means a live database is always clean; this
        surfaces violations only for databases edited out-of-band."""
        violations: List[ConstraintViolation] = []
        with self._conn_lock:
            cursor = self._conn.execute("PRAGMA foreign_key_check")
            dangling = cursor.fetchall()
        for table, rowid, ref_table, _fk_index in dangling:
            violations.append(
                ConstraintViolation(
                    table,
                    "foreign-key",
                    f"row {rowid} dangles into {ref_table}",
                )
            )
        return violations

    def close(self) -> None:
        """Release the pool and the main connection; safe to call twice
        (the service tier closes backends on shutdown *and* on tenant
        eviction, whichever comes first)."""
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            if self._pool is not None:
                self._pool.close()
            self._statements.clear()
            self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __str__(self) -> str:
        return f"SqliteBackend({self.db_path!r})"


def execute_compiled(
    statements: StatementCache,
    compiled: CompiledSql,
    params: Optional[Tuple[object, ...]] = None,
) -> List[Dict[str, object]]:
    """Run one compiled SELECT through a statement cache and decode rows
    with evaluator semantics (shared by the main connection and every
    pooled reader, so both decode byte-identically)."""
    cursor = statements.execute(
        compiled.text, compiled.params if params is None else params
    )
    typing = compiled.decoders()
    columns = compiled.columns
    seen = set()
    unique: List[Dict[str, object]] = []
    for values in cursor.fetchall():
        row = {
            name: decode_value(value, typing.get(name))
            for name, value in zip(columns, values)
        }
        key = tuple(sorted(row.items()))
        if key not in seen:  # set semantics, like evaluate_query
            seen.add(key)
            unique.append(row)
    return unique


class _LeasedReader:
    """A backend-shaped reader over one leased pooled connection.

    Lives exactly as long as one request; ``prepares_sql`` routes cached
    plans through :meth:`run_compiled` on the private connection, and the
    ad-hoc :meth:`run_query` fallback compiles on the fly.  The schema is
    read from the owning backend *live* — if a migration swaps it while
    this reader is in flight, the epoch engine's seqlock detects the
    overlap and retries the request.
    """

    name = "sqlite"
    prepares_sql = True
    compiles_plans = False

    def __init__(self, backend: SqliteBackend, leased: PooledConnection) -> None:
        self._backend = backend
        self._leased = leased

    @property
    def schema(self) -> StoreSchema:
        return self._backend.schema

    def run_compiled(
        self, compiled: CompiledSql, params: Optional[Tuple[object, ...]] = None
    ) -> List[Dict[str, object]]:
        return execute_compiled(self._leased.statements, compiled, params)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        if not SUPPORTS_FULL_OUTER_JOIN and _has_full_outer(query):
            raise SchemaError(
                "this SQLite lacks FULL OUTER JOIN (needs >= 3.39); "
                "use the memory backend for partitioned views"
            )
        compiled = SqlCompiler(self.schema).compile(query)
        return self.run_compiled(compiled, compiled.params)


class SqliteReadView(ReadView):
    """Live read view over a :class:`SqliteBackend`.

    Not a snapshot: SQLite serves whatever is committed.  With a pool,
    :meth:`acquire` leases one pooled connection per request (check-in
    clears its statement cache, so cursors never migrate between worker
    threads); without one, readers serialize on the main connection
    under the backend's lock.
    """

    snapshot = False

    def __init__(self, backend: SqliteBackend) -> None:
        self._backend = backend

    @contextmanager
    def acquire(self) -> Iterator[object]:
        backend = self._backend
        pool = backend._pool
        if pool is None:
            with backend._conn_lock:
                yield backend
            return
        with backend._gate.read():
            leased = pool.checkout()
            try:
                yield _LeasedReader(backend, leased)
            finally:
                pool.checkin(leased)


class _Transaction:
    """``BEGIN IMMEDIATE`` + deferred FK checking; rollback on any error."""

    def __init__(self, conn: sqlite3.Connection, label: str) -> None:
        self.conn = conn
        self.label = label

    def __enter__(self) -> sqlite3.Connection:
        self.conn.execute("BEGIN IMMEDIATE")
        # re-check all foreign keys at COMMIT instead of per statement:
        # migration scripts drop+rename parent tables mid-transaction.
        self.conn.execute("PRAGMA defer_foreign_keys = ON")
        return self.conn

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            try:
                self.conn.execute("COMMIT")
            except sqlite3.Error:
                self.conn.execute("ROLLBACK")
                raise
            return False
        self.conn.execute("ROLLBACK")
        return False


def _has_full_outer(query: Query) -> bool:
    from repro.algebra.queries import FullOuterJoin

    return any(isinstance(node, FullOuterJoin) for node in query.walk())
