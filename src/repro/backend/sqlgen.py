"""Compiling the view algebra to parameterized SQL.

The in-memory evaluator (:mod:`repro.algebra.evaluate`) defines the
reference semantics of the store-side algebra: natural joins on the
static shared columns, NULL join keys never matching, COALESCE merging of
shared non-join columns, UNION ALL padding, and a *two-valued* condition
semantics (an atom over a NULL or missing column is plainly false).  This
module compiles the same algebra to SQL that a real engine executes with
identical results:

* every condition atom is wrapped so it can never yield SQL's UNKNOWN —
  ``ifnull(x > ?, 0)`` — which makes ``NOT``/``AND``/``OR`` behave exactly
  like the Python evaluator's booleans;
* atoms over columns the subquery does not produce fold to ``0`` at
  compile time (the evaluator's ``KeyError -> False`` rule);
* joins are emitted with explicit ``ON`` equalities and COALESCE
  projections, reproducing the evaluator's merge behaviour;
* bool columns are tracked through the tree (SQLite stores them as 0/1)
  so results decode back to Python ``True``/``False`` byte-identically.

All values travel as ``?`` parameters; identifiers are double-quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TrueCond,
)
from repro.algebra.queries import (
    AssociationScan,
    Const,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
)
from repro.errors import EvaluationError
from repro.relational.instances import Row
from repro.relational.schema import StoreSchema, Table


def quote(identifier: str) -> str:
    """Double-quote an SQL identifier."""
    return '"' + identifier.replace('"', '""') + '"'


@dataclass(frozen=True)
class CompiledSql:
    """One executable statement: text, positional params, result shape."""

    text: str
    params: Tuple[object, ...]
    columns: Tuple[str, ...] = ()
    #: output column -> domain base ("int", "bool", ...) where known
    typing: Tuple[Tuple[str, Optional[str]], ...] = ()

    def decoders(self) -> Dict[str, Optional[str]]:
        return dict(self.typing)

    def __str__(self) -> str:
        return f"{self.text}  -- params={list(self.params)}"


def decode_value(value: object, base: Optional[str]) -> object:
    """Undo SQLite's storage coercions (bools come back as 0/1)."""
    if base == "bool" and isinstance(value, int) and not isinstance(value, bool):
        return bool(value)
    return value


def decode_row(row: Dict[str, object], typing: Dict[str, Optional[str]]) -> Dict[str, object]:
    return {
        name: decode_value(value, typing.get(name)) for name, value in row.items()
    }


# ---------------------------------------------------------------------------
# Query compilation
# ---------------------------------------------------------------------------

@dataclass
class _Part:
    """An intermediate SELECT: full statement text + result shape."""

    sql: str
    columns: Tuple[str, ...]
    typing: Dict[str, Optional[str]]


class SqlCompiler:
    """Compiles store-side algebra queries against one :class:`StoreSchema`."""

    def __init__(self, schema: StoreSchema) -> None:
        self.schema = schema
        self._params: List[object] = []
        self._alias = 0

    # -- public entry points -------------------------------------------
    def compile(self, query: Query) -> CompiledSql:
        self._params = []
        self._alias = 0
        part = self._compile(query)
        return CompiledSql(
            part.sql,
            tuple(self._params),
            part.columns,
            tuple(part.typing.items()),
        )

    # -- helpers -------------------------------------------------------
    def _next_alias(self) -> str:
        self._alias += 1
        return f"q{self._alias}"

    def _compile(self, query: Query) -> _Part:
        if isinstance(query, TableScan):
            return self._table_scan(query)
        if isinstance(query, (SetScan, AssociationScan)):
            raise EvaluationError(
                f"cannot compile client-side scan {query} to store SQL"
            )
        if isinstance(query, Select):
            return self._select(query)
        if isinstance(query, Project):
            return self._project(query)
        if isinstance(query, Join):
            return self._join(query, "JOIN")
        if isinstance(query, LeftOuterJoin):
            return self._join(query, "LEFT JOIN")
        if isinstance(query, FullOuterJoin):
            return self._join(query, "FULL OUTER JOIN")
        if isinstance(query, UnionAll):
            return self._union(query)
        raise EvaluationError(f"unknown query node {query!r}")

    def _table_scan(self, query: TableScan) -> _Part:
        table = self.schema.table(query.table_name)
        columns = table.column_names
        typing = {c.name: c.domain.base for c in table.columns}
        select_list = ", ".join(quote(c) for c in columns)
        return _Part(
            f"SELECT {select_list} FROM {quote(table.name)}", columns, typing
        )

    def _select(self, query: Select) -> _Part:
        source = self._compile(query.source)
        alias = self._next_alias()
        condition = self._condition(query.condition, set(source.columns), alias)
        select_list = ", ".join(f"{alias}.{quote(c)}" for c in source.columns)
        sql = (
            f"SELECT {select_list} FROM ({source.sql}) AS {alias} "
            f"WHERE {condition}"
        )
        return _Part(sql, source.columns, source.typing)

    def _project(self, query: Project) -> _Part:
        source = self._compile(query.source)
        alias = self._next_alias()
        items: List[str] = []
        typing: Dict[str, Optional[str]] = {}
        for item in query.items:
            if isinstance(item.expr, Const):
                items.append(
                    f"{self._const(item.expr.value)} AS {quote(item.output)}"
                )
                typing[item.output] = _const_base(item.expr.value)
            else:
                name = item.expr.name
                if name not in source.columns:
                    raise EvaluationError(
                        f"projection references missing column {name!r} "
                        f"(subquery has {sorted(source.columns)})"
                    )
                items.append(f"{alias}.{quote(name)} AS {quote(item.output)}")
                typing[item.output] = source.typing.get(name)
        sql = f"SELECT {', '.join(items)} FROM ({source.sql}) AS {alias}"
        return _Part(sql, query.output_names, typing)

    def _join(self, query, keyword: str) -> _Part:
        left = self._compile(query.left)
        right = self._compile(query.right)
        la, ra = self._next_alias(), self._next_alias()
        shared = tuple(c for c in left.columns if c in right.columns)
        if query.on is not None:
            missing = [c for c in query.on if c not in shared]
            if missing:
                raise EvaluationError(
                    f"join columns {missing} are not shared by both inputs"
                )
            join_columns = query.on
        else:
            join_columns = shared
        coalesced = set(c for c in shared if c not in join_columns)
        full = keyword == "FULL OUTER JOIN"
        # Output columns mirror evaluate.output_columns: left + right-only.
        items: List[str] = []
        typing: Dict[str, Optional[str]] = {}
        columns: List[str] = []
        for c in left.columns:
            if c in coalesced or (full and c in join_columns):
                items.append(
                    f"COALESCE({la}.{quote(c)}, {ra}.{quote(c)}) AS {quote(c)}"
                )
            else:
                items.append(f"{la}.{quote(c)} AS {quote(c)}")
            typing[c] = left.typing.get(c) or right.typing.get(c)
            columns.append(c)
        for c in right.columns:
            if c in shared:
                continue
            items.append(f"{ra}.{quote(c)} AS {quote(c)}")
            typing[c] = right.typing.get(c)
            columns.append(c)
        if join_columns:
            on = " AND ".join(
                f"{la}.{quote(c)} = {ra}.{quote(c)}" for c in join_columns
            )
        else:
            on = "1 = 1"  # natural join with no shared columns: cross product
        sql = (
            f"SELECT {', '.join(items)} FROM ({left.sql}) AS {la} "
            f"{keyword} ({right.sql}) AS {ra} ON {on}"
        )
        return _Part(sql, tuple(columns), typing)

    def _union(self, query: UnionAll) -> _Part:
        parts = [self._compile(branch) for branch in query.branches]
        columns: List[str] = []
        typing: Dict[str, Optional[str]] = {}
        for part in parts:
            for c in part.columns:
                if c not in columns:
                    columns.append(c)
                if typing.get(c) is None:
                    typing[c] = part.typing.get(c)
        blocks = []
        for part in parts:
            alias = self._next_alias()
            items = ", ".join(
                f"{alias}.{quote(c)} AS {quote(c)}"
                if c in part.columns
                else f"NULL AS {quote(c)}"
                for c in columns
            )
            blocks.append(f"SELECT {items} FROM ({part.sql}) AS {alias}")
        return _Part(" UNION ALL ".join(blocks), tuple(columns), typing)

    # -- scalars -------------------------------------------------------
    def _const(self, value: object) -> str:
        if value is None:
            return "NULL"
        if value is True:
            return "1"
        if value is False:
            return "0"
        self._params.append(value)
        return "?"

    # -- conditions ----------------------------------------------------
    def _condition(self, condition: Condition, available: set, alias: str) -> str:
        """Render *condition* as a never-UNKNOWN SQL boolean expression."""
        if isinstance(condition, TrueCond):
            return "1"
        if isinstance(condition, FalseCond):
            return "0"
        if isinstance(condition, (IsOf, IsOfOnly)):
            raise EvaluationError(
                "IS OF atoms cannot be compiled to store SQL"
            )
        if isinstance(condition, IsNull):
            if condition.attr not in available:
                return "0"  # evaluator: missing attribute -> False
            return f"{alias}.{quote(condition.attr)} IS NULL"
        if isinstance(condition, IsNotNull):
            if condition.attr not in available:
                return "0"
            return f"{alias}.{quote(condition.attr)} IS NOT NULL"
        if isinstance(condition, Comparison):
            return self._comparison(condition, available, alias)
        if isinstance(condition, And):
            rendered = [
                self._condition(op, available, alias) for op in condition.operands
            ]
            return "(" + " AND ".join(rendered) + ")"
        if isinstance(condition, Or):
            rendered = [
                self._condition(op, available, alias) for op in condition.operands
            ]
            return "(" + " OR ".join(rendered) + ")"
        if isinstance(condition, Not):
            return f"NOT ({self._condition(condition.operand, available, alias)})"
        raise EvaluationError(f"unknown condition node {condition!r}")

    def _comparison(self, condition: Comparison, available: set, alias: str) -> str:
        if condition.attr not in available:
            return "0"
        column = f"{alias}.{quote(condition.attr)}"
        if condition.const is None:
            # the evaluator compares against None with ==/!= only
            if condition.op == "=":
                return "0"
            if condition.op == "!=":
                return f"{column} IS NOT NULL"
            raise EvaluationError(
                f"cannot order-compare against NULL: {condition}"
            )
        self._params.append(condition.const)
        # ifnull(..., 0): a NULL column makes the atom false, never UNKNOWN
        return f"ifnull({column} {condition.op} ?, 0)"


def compile_query(query: Query, schema: StoreSchema) -> CompiledSql:
    """Compile a store-side algebra query to one parameterized SELECT."""
    return SqlCompiler(schema).compile(query)


def _const_base(value: object) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "string"
    return None


# ---------------------------------------------------------------------------
# DML statements (rows travel as parameters)
# ---------------------------------------------------------------------------

def insert_statement(table_name: str, row: Row) -> CompiledSql:
    columns = ", ".join(quote(name) for name, _ in row)
    marks = ", ".join("?" for _ in row)
    return CompiledSql(
        f"INSERT INTO {quote(table_name)} ({columns}) VALUES ({marks})",
        tuple(value for _, value in row),
    )


def delete_statement(table_name: str, row: Row) -> CompiledSql:
    """Delete exactly this row (``IS ?`` matches NULL-valued columns)."""
    clauses = " AND ".join(f"{quote(name)} IS ?" for name, _ in row)
    return CompiledSql(
        f"DELETE FROM {quote(table_name)} WHERE {clauses}",
        tuple(value for _, value in row),
    )


def update_statement(table: Table, old_row: Row, new_row: Row) -> CompiledSql:
    """Rewrite the row with *old_row*'s primary key to *new_row*'s values."""
    key = set(table.primary_key)
    old = dict(old_row)
    sets = [(name, value) for name, value in new_row if name not in key]
    assignments = ", ".join(f"{quote(name)} = ?" for name, _ in sets)
    where = " AND ".join(f"{quote(name)} = ?" for name in table.primary_key)
    params = tuple(value for _, value in sets) + tuple(
        old[name] for name in table.primary_key
    )
    return CompiledSql(
        f"UPDATE {quote(table.name)} SET {assignments} WHERE {where}", params
    )


def delta_statements(delta, schema: StoreSchema) -> List[CompiledSql]:
    """Lower a :class:`~repro.query.dml.StoreDelta` to ordered statements.

    Deletes first, then updates, then inserts — and within each verb the
    tables run in foreign-key topology order (deletes visit referrers
    before referees, inserts referees before referrers).  Foreign-key
    checking is deferred to commit anyway, but the topological order
    keeps every intermediate point of the script consistent too, so the
    same script replays safely on engines without deferred checking.
    Tables whose :class:`~repro.query.dml.TableDelta` is empty contribute
    nothing (the incremental write path records touched tables even when
    their net row change cancels out).
    """
    # late import: ddl builds on this module's quoting helpers
    from repro.backend.ddl import creation_order, drop_order

    touched = [
        schema.table(name)
        for name in sorted(delta.tables)
        if not delta.tables[name].empty
    ]
    statements: List[CompiledSql] = []
    for table in drop_order(touched):
        for row in delta.tables[table.name].deletes:
            statements.append(delete_statement(table.name, row))
    for table in creation_order(touched):
        for old_row, new_row in delta.tables[table.name].updates:
            statements.append(update_statement(table, old_row, new_row))
    for table in creation_order(touched):
        for row in delta.tables[table.name].inserts:
            statements.append(insert_statement(table.name, row))
    return statements


def grouped_delta_statements(
    delta, schema: StoreSchema
) -> List[Tuple[str, List[Tuple[object, ...]]]]:
    """Delta statements as order-preserving ``(text, [params, ...])`` groups.

    Consecutive statements with identical SQL text (the per-table delete /
    update / insert runs of :func:`delta_statements`) collapse into one
    group, so the backend can hand each group to ``executemany`` — one
    prepared statement per table per verb instead of one per row.  Groups
    are never empty: a table with no net changes emits no statements at
    all rather than an empty parameter batch.
    """
    groups: List[Tuple[str, List[Tuple[object, ...]]]] = []
    for statement in delta_statements(delta, schema):
        if groups and groups[-1][0] == statement.text:
            groups[-1][1].append(statement.params)
        else:
            groups.append((statement.text, [statement.params]))
    return [group for group in groups if group[1]]


def script_text(statements: Sequence[CompiledSql]) -> str:
    """Human-readable rendering of a statement list (params inlined)."""
    lines = []
    for statement in statements:
        text = statement.text
        for value in statement.params:
            text = text.replace("?", _inline_literal(value), 1)
        lines.append(text + ";")
    return "\n".join(lines)


def _inline_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "1"
    if value is False:
        return "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)
