"""The pluggable store-backend protocol.

The paper's compiled views exist precisely so an ORM can run against a
real relational DBMS (EF over SQL Server, Section 1).  A
:class:`StoreBackend` is the seam where our runtime meets a store engine:
the :class:`~repro.session.OrmSession` speaks only this protocol, so
queries (unfolded to store algebra), SaveChanges deltas, and SMO data
migrations execute identically over the in-memory interpreter
(:class:`~repro.backend.memory.MemoryBackend`) or a live SQLite database
(:class:`~repro.backend.sqlite.SqliteBackend`), and later backends
(a server DBMS, shards) only need to implement this surface.

Contract highlights:

* :meth:`run_query` takes a *store-side* algebra query (tables scans,
  σ/π/⋈/∪) and returns evaluator-identical row dicts — same columns,
  same Python values (bools stay bools), set semantics;
* :meth:`apply_delta` is transactional: on a constraint violation it
  raises :class:`~repro.errors.ValidationError` and changes nothing;
* :meth:`migrate` executes a planned :class:`MigrationScript` plus the
  store-schema swap as one transaction with the same all-or-nothing
  guarantee;
* :meth:`to_store_state` materializes the contents as a
  :class:`StoreState` and may cache it — the session's ``store_state``
  property is this method, so repeated reads of an unchanged store are
  free and identity-stable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.algebra.queries import Query
from repro.errors import SchemaError
from repro.query.dml import StoreDelta
from repro.relational.constraints import ConstraintViolation
from repro.relational.instances import Row, StoreState
from repro.relational.schema import StoreSchema

#: environment variable selecting the default backend for new sessions
BACKEND_ENV = "REPRO_BACKEND"
BACKEND_NAMES = ("memory", "sqlite")


class StoreBackend:
    """Abstract store engine behind an :class:`OrmSession`."""

    #: short engine name ("memory" / "sqlite")
    name: str = "?"
    #: True for engines that execute compiled parameterized SQL — cached
    #: plans then call ``run_compiled(compiled, params)`` instead of
    #: handing over algebra trees, reusing prepared statements.
    prepares_sql: bool = False
    #: True for engines that execute compiled *physical plans*
    #: (:mod:`repro.backend.physical`) — cached plans then call
    #: ``run_compiled_plan(plan_set, params)`` instead of re-interpreting
    #: the algebra per request, symmetric with ``prepares_sql``.
    compiles_plans: bool = False
    #: True for engines whose :meth:`read_view` pins an immutable data
    #: snapshot: a reader holding such a view observes one consistent
    #: store state forever, regardless of concurrent writes.  Engines
    #: without snapshot reads serve live data, and the epoch engine
    #: detects write/read overlap with its seqlock and retries.
    snapshot_reads: bool = False

    @property
    def schema(self) -> StoreSchema:
        raise NotImplementedError

    # -- reading -------------------------------------------------------
    def rows(self, table_name: str) -> Tuple[Row, ...]:
        """Canonical rows of one table."""
        raise NotImplementedError

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        """Execute a store-side algebra query with evaluator semantics."""
        raise NotImplementedError

    def to_store_state(self) -> StoreState:
        """Materialize (and possibly cache) the contents as a StoreState."""
        raise NotImplementedError

    def run_compiled_plan(self, plan_set, params: Tuple[object, ...]):
        """Execute a compiled :class:`~repro.backend.physical.PhysicalPlanSet`
        against bound parameters, returning per-branch row lists.  Only
        engines advertising ``compiles_plans`` implement this."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, FrozenSet[Row]]:
        return self.to_store_state().snapshot()

    def row_count(self) -> int:
        return self.to_store_state().row_count()

    # -- writing -------------------------------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        """Apply a SaveChanges delta transactionally; raise
        :class:`ValidationError` (and change nothing) on a constraint
        violation."""
        raise NotImplementedError

    def migrate(self, script, new_schema: StoreSchema, target: StoreState) -> None:
        """Execute a migration script + schema swap as one transaction."""
        raise NotImplementedError

    def replace_contents(self, state: StoreState) -> None:
        """Reset schema and data wholesale (undo, bulk load)."""
        raise NotImplementedError

    # -- integrity -----------------------------------------------------
    def check_constraints(self) -> List[ConstraintViolation]:
        """Current PK/FK violations (empty for engines that enforce
        natively — they cannot reach a violating state)."""
        raise NotImplementedError

    # -- concurrent reading --------------------------------------------
    def read_view(self) -> "ReadView":
        """A handle the epoch engine publishes for concurrent readers.

        The returned view quacks like enough of a backend for the
        query-serving path (``schema``, capability flags, ``run_query``
        and the compiled-execution entry points).  Engines with
        ``snapshot_reads`` return a view pinned to the data as of this
        call; others return a live view whose :meth:`ReadView.acquire`
        leases whatever per-reader resources (a pooled connection) one
        request needs.  The default serializes readers on the backend
        itself — correct, but concurrency-free.
        """
        return DirectReadView(self)

    def close(self) -> None:
        """Release engine resources (no-op by default)."""


class ReadView:
    """Protocol of what :meth:`StoreBackend.read_view` returns.

    ``snapshot`` mirrors the backend's ``snapshot_reads``: when True the
    view is immutable and a reader needs no further coordination; when
    False the engine brackets each read with its seqlock.
    """

    snapshot: bool = False

    @contextmanager
    def acquire(self) -> Iterator[StoreBackend]:
        """Lease a backend-shaped reader for one request."""
        raise NotImplementedError
        yield  # pragma: no cover

    def release(self) -> None:
        """Drop per-view resources when the owning epoch is replaced
        (no-op by default; views over pooled engines hold nothing)."""


class DirectReadView(ReadView):
    """Fallback view: every reader runs on the backend itself."""

    snapshot = False

    def __init__(self, backend: StoreBackend) -> None:
        self._backend = backend

    @contextmanager
    def acquire(self) -> Iterator[StoreBackend]:
        yield self._backend


def default_backend_name() -> str:
    """The session default: ``$REPRO_BACKEND`` or ``memory``."""
    name = os.environ.get(BACKEND_ENV, "memory").strip().lower() or "memory"
    if name not in BACKEND_NAMES:
        raise SchemaError(
            f"unknown backend {name!r} in ${BACKEND_ENV}; "
            f"expected one of {BACKEND_NAMES}"
        )
    return name


def create_backend(
    name: Optional[str],
    schema: StoreSchema,
    store_state: Optional[StoreState] = None,
    db_path: Optional[str] = None,
    pool_size: int = 0,
) -> StoreBackend:
    """Build a backend by name (``None`` -> the environment default).

    *pool_size* > 0 provisions a reader-connection pool for engines with
    thread-affine connections (SQLite); the memory backend ignores it —
    its snapshot views need no pooling.
    """
    from repro.backend.memory import MemoryBackend
    from repro.backend.sqlite import SqliteBackend

    resolved = (name or default_backend_name()).strip().lower()
    if resolved == "memory":
        return MemoryBackend(store_state or StoreState(schema))
    if resolved == "sqlite":
        backend = SqliteBackend(schema, db_path=db_path, pool_size=pool_size)
        if store_state is not None and store_state.row_count():
            backend.replace_contents(store_state)
        return backend
    raise SchemaError(
        f"unknown backend {resolved!r}; expected one of {BACKEND_NAMES}"
    )
