"""Pluggable store backends: where compiled views meet a real engine."""

from repro.backend.base import (
    BACKEND_ENV,
    BACKEND_NAMES,
    StoreBackend,
    create_backend,
    default_backend_name,
)
from repro.backend.ddl import (
    create_table_sql,
    drop_table_sql,
    schema_ddl,
    schema_ddl_text,
)
from repro.backend.memory import MemoryBackend
from repro.backend.migrate import MigrationScript, MigrationStep, plan_migration
from repro.backend.sqlgen import (
    CompiledSql,
    SqlCompiler,
    compile_query,
    grouped_delta_statements,
)
from repro.backend.sqlite import SqliteBackend, StatementCache, StatementCacheStats

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "CompiledSql",
    "MemoryBackend",
    "MigrationScript",
    "MigrationStep",
    "SqlCompiler",
    "SqliteBackend",
    "StatementCache",
    "StatementCacheStats",
    "grouped_delta_statements",
    "StoreBackend",
    "compile_query",
    "create_backend",
    "create_table_sql",
    "default_backend_name",
    "drop_table_sql",
    "plan_migration",
    "schema_ddl",
    "schema_ddl_text",
]
