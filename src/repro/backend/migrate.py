"""Lowering a mapping evolution to an executable store migration script.

An SMO batch produces (a) a :class:`MappingDelta` whose store-side ops
change the store schema and (b) a data migration defined semantically as
*read through the old query views, write through the new update views*
(Section 2.3: sound SMOs leave pre-existing data fixed under that
composition).  This module lowers both into one ordered script a real
database executes inside a single transaction:

1. **rebuilds** — tables whose definition changed are rebuilt SQLite
   style: create a twin under a scratch name, move the surviving columns
   across with ``INSERT ... SELECT`` (added columns arrive as NULL — the
   degenerate old-query-view∘new-update-view composition for data the
   soundness restriction proves unchanged), drop the old table, rename;
2. **drops** — referrers before referees;
3. **creates** — referees before referrers;
4. **residual DML** — whatever row-level difference remains between the
   state the DDL steps produce and the true migrated state (computed
   through the views) becomes parameterized DELETE/UPDATE/INSERT steps.

The planner is a pure function; execution (and rollback on failure) is
the backend's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.ddl import (
    create_table_sql,
    creation_order,
    drop_order,
    drop_table_sql,
)
from repro.backend.sqlgen import (
    CompiledSql,
    delete_statement,
    insert_statement,
    quote,
    script_text,
    update_statement,
)
from repro.query.dml import diff_store_states
from repro.relational.instances import StoreState, row_map
from repro.relational.schema import StoreSchema, Table

#: scratch-name prefix for table rebuilds
REBUILD_PREFIX = "__migrate__"


@dataclass(frozen=True)
class MigrationStep:
    """One ordered statement of a migration script."""

    kind: str  # "create" | "drop" | "copy" | "rename" | "delete" | "update" | "insert"
    statement: CompiledSql
    note: str = ""

    def __str__(self) -> str:
        suffix = f"  -- {self.note}" if self.note else ""
        return f"{self.statement.text}{suffix}"


@dataclass
class MigrationScript:
    """The ordered, transactional lowering of one evolution batch."""

    steps: List[MigrationStep] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.steps

    def ddl_steps(self) -> List[MigrationStep]:
        return [s for s in self.steps if s.kind in ("create", "drop", "copy", "rename")]

    def dml_steps(self) -> List[MigrationStep]:
        return [s for s in self.steps if s.kind in ("delete", "update", "insert")]

    def to_sql(self) -> str:
        """The whole script as executable text (params inlined, framed by
        an explicit transaction for humans; backends bind params instead)."""
        body = script_text([s.statement for s in self.steps])
        return "BEGIN;\n" + (body + "\n" if body else "") + "COMMIT;"

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for step in self.steps:
            kinds[step.kind] = kinds.get(step.kind, 0) + 1
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"MigrationScript({len(self.steps)} steps: {rendered or 'empty'})"

    def __str__(self) -> str:
        return self.summary()


def plan_migration(
    old_schema: StoreSchema,
    new_schema: StoreSchema,
    old_store: StoreState,
    target_store: StoreState,
) -> MigrationScript:
    """Plan the script that turns (*old_schema*, *old_store*) into
    (*new_schema*, *target_store*).

    Schema changes are derived by comparing the two schemas (the net
    effect of the delta's AddTable/DropTable/ReplaceTable ops, however
    they composed inside a batch); data movement for rebuilt tables is an
    ``INSERT ... SELECT`` over the surviving columns, and any remaining
    row-level difference against *target_store* becomes parameterized
    DML.
    """
    script = MigrationScript()
    old_tables = {t.name: t for t in old_schema.tables}
    new_tables = {t.name: t for t in new_schema.tables}

    dropped = [t for name, t in old_tables.items() if name not in new_tables]
    created = [t for name, t in new_tables.items() if name not in old_tables]
    rebuilt = [
        (old_tables[name], table)
        for name, table in new_tables.items()
        if name in old_tables and old_tables[name] != table
    ]

    # 1. rebuilds (scratch twin + INSERT..SELECT + drop + rename)
    for old_table, new_table in sorted(rebuilt, key=lambda pair: pair[0].name):
        scratch = REBUILD_PREFIX + new_table.name
        script.steps.append(
            MigrationStep(
                "create",
                CompiledSql(create_table_sql(new_table, name=scratch), ()),
                note=f"rebuild {new_table.name}: new definition",
            )
        )
        shared = [
            c.name for c in new_table.columns if old_table.has_column(c.name)
        ]
        if shared:
            cols = ", ".join(quote(c) for c in shared)
            script.steps.append(
                MigrationStep(
                    "copy",
                    CompiledSql(
                        f"INSERT INTO {quote(scratch)} ({cols}) "
                        f"SELECT {cols} FROM {quote(old_table.name)}",
                        (),
                    ),
                    note="old-query-view ∘ new-update-view on surviving columns",
                )
            )
        script.steps.append(
            MigrationStep(
                "drop",
                CompiledSql(drop_table_sql(old_table.name), ()),
                note=f"rebuild {new_table.name}: retire old definition",
            )
        )
        script.steps.append(
            MigrationStep(
                "rename",
                CompiledSql(
                    f"ALTER TABLE {quote(scratch)} RENAME TO "
                    f"{quote(new_table.name)}",
                    (),
                ),
            )
        )

    # 2. drops, referrers first
    for table in drop_order(dropped):
        script.steps.append(
            MigrationStep("drop", CompiledSql(drop_table_sql(table.name), ()))
        )

    # 3. creates, referees first
    for table in creation_order(created):
        script.steps.append(
            MigrationStep("create", CompiledSql(create_table_sql(table), ()))
        )

    # 4. residual DML against the state the DDL steps leave behind
    predicted = _predict_after_ddl(old_store, new_schema, dict(rebuilt_names(rebuilt)))
    residual = diff_store_states(predicted, target_store)
    for table_name in sorted(residual.tables):
        for row in residual.tables[table_name].deletes:
            script.steps.append(
                MigrationStep("delete", delete_statement(table_name, row))
            )
    for table_name in sorted(residual.tables):
        table = new_schema.table(table_name)
        for old_row, new_row in residual.tables[table_name].updates:
            script.steps.append(
                MigrationStep("update", update_statement(table, old_row, new_row))
            )
    for table_name in sorted(residual.tables):
        for row in residual.tables[table_name].inserts:
            script.steps.append(
                MigrationStep("insert", insert_statement(table_name, row))
            )
    return script


def rebuilt_names(
    rebuilt: List[Tuple[Table, Table]]
) -> List[Tuple[str, Tuple[Table, Table]]]:
    return [(new.name, (old, new)) for old, new in rebuilt]


def _predict_after_ddl(
    old_store: StoreState,
    new_schema: StoreSchema,
    rebuilt: Dict[str, Tuple[Table, Table]],
) -> StoreState:
    """The store state the DDL prefix of the script produces.

    Dropped tables vanish, created tables are empty, rebuilt tables keep
    their rows projected onto the surviving columns with NULL padding for
    added ones — exactly what the ``INSERT ... SELECT`` steps do.
    """
    predicted = StoreState(new_schema)
    for table in old_store.populated_tables():
        if not new_schema.has_table(table.name):
            continue  # dropped
        if table.name in rebuilt:
            _, new_table = rebuilt[table.name]
            for row in old_store.rows(table.name):
                values = row_map(row)
                projected = {
                    c.name: values.get(c.name) for c in new_table.columns
                }
                predicted.add_row(table.name, projected)
        else:
            for row in old_store.rows(table.name):
                predicted.add_row(table.name, row)
    return predicted


def migration_sql(
    old_schema: StoreSchema,
    new_schema: StoreSchema,
    old_store: Optional[StoreState] = None,
    target_store: Optional[StoreState] = None,
) -> str:
    """Convenience: plan and render in one step (empty stores by default)."""
    script = plan_migration(
        old_schema,
        new_schema,
        old_store if old_store is not None else StoreState(old_schema),
        target_store if target_store is not None else StoreState(new_schema),
    )
    return script.to_sql()
