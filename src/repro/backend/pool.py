"""A bounded connection pool for thread-affine store engines.

SQLite connections are cheap but not shareable across threads without
care: cursors belong to the connection that made them, and interleaving
two threads on one connection corrupts statement state.  The serving
tier therefore checks a :class:`PooledConnection` out *per request*:
each pooled connection carries its own prepared-statement cache, exactly
one thread uses it at a time, and check-in clears the statement cache so
no cursor ever crosses a thread boundary (a cursor created by worker A
must not be re-executed by worker B — SQLite permits it only when
``check_same_thread`` is off, and even then the fetch state would be
shared).

Ownership rules (documented in ``docs/architecture.md``):

* the **backend owns the pool**; closing the backend closes every idle
  pooled connection and marks the pool closed (idempotently);
* a **checkout leases** one connection to one worker for the duration of
  one logical request; the worker must check it back in (the engine does
  this in a ``finally``);
* connections returned to a closed pool are closed instead of pooled.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional


class PoolClosed(Exception):
    """Checkout attempted on a pool that has been closed."""


class ReadWriteGate:
    """A write-preferring readers/writer gate.

    Pooled readers hold the gate *shared* for the duration of one leased
    request; backend mutations hold it *exclusive*.  SQLite's shared-cache
    mode raises ``SQLITE_LOCKED`` (which ``busy_timeout`` does **not**
    retry) when DDL races an in-flight reader on another connection, so
    the writer drains readers first: once a writer announces itself, new
    readers queue behind it — writers can never starve under sustained
    read traffic.  Reads themselves never block each other.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_waiting = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            while self._writer_waiting:  # one writer at a time in the gate
                self._cond.wait()
            self._writer_waiting = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._writer_waiting = False
                self._cond.notify_all()


class PooledConnection:
    """One leased connection plus its private statement cache.

    ``statements`` is engine-specific (for SQLite a
    :class:`~repro.backend.sqlite.StatementCache`); the pool only
    requires it to expose ``clear()``.
    """

    __slots__ = ("connection", "statements")

    def __init__(self, connection, statements) -> None:
        self.connection = connection
        self.statements = statements


class ConnectionPool:
    """A bounded pool of :class:`PooledConnection`\\ s.

    *factory* builds a fresh :class:`PooledConnection` on demand;
    *closer* releases one for good.  At most *max_size* connections ever
    exist; when all are leased, :meth:`checkout` blocks until one is
    returned (serving traffic beyond the pool width queues instead of
    opening unbounded connections).
    """

    def __init__(
        self,
        factory: Callable[[], PooledConnection],
        closer: Callable[[PooledConnection], None],
        max_size: int = 8,
    ) -> None:
        if max_size < 1:
            raise ValueError("pool needs max_size >= 1")
        self._factory = factory
        self._closer = closer
        self.max_size = max_size
        self._idle: "queue.Queue[PooledConnection]" = queue.Queue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False
        self.checkouts = 0
        self.waits = 0

    # ------------------------------------------------------------------
    def checkout(self, timeout: Optional[float] = None) -> PooledConnection:
        """Lease a connection, creating one if under the bound."""
        with self._lock:
            if self._closed:
                raise PoolClosed("connection pool is closed")
            self.checkouts += 1
            try:
                return self._idle.get_nowait()
            except queue.Empty:
                pass
            if self._created < self.max_size:
                self._created += 1
                make = True
            else:
                make = False
                self.waits += 1
        if make:
            try:
                return self._factory()
            except BaseException:
                with self._lock:
                    self._created -= 1
                raise
        return self._idle.get(timeout=timeout)

    def checkin(self, leased: PooledConnection) -> None:
        """Return a leased connection; its statement cache is cleared so
        cursors never survive into another worker's lease."""
        leased.statements.clear()
        with self._lock:
            if self._closed:
                self._created -= 1
                self._closer(leased)
                return
        self._idle.put(leased)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every idle connection; idempotent.  Leased connections
        are closed as they come back."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                leased = self._idle.get_nowait()
            except queue.Empty:
                break
            with self._lock:
                self._created -= 1
            self._closer(leased)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_size": self.max_size,
                "created": self._created,
                "idle": self._idle.qsize(),
                "checkouts": self.checkouts,
                "waits": self.waits,
                "closed": self._closed,
            }

    def __str__(self) -> str:
        return f"ConnectionPool({self.stats()})"
