"""The in-memory store backend: the original interpreter behind the
:class:`~repro.backend.base.StoreBackend` protocol.

Ad-hoc queries evaluate with :mod:`repro.algebra.evaluate` (the reference
semantics every other backend must match); *cached* plans run through the
compiled physical-plan path (``compiles_plans``,
:mod:`repro.backend.physical`), which feeds on two serving caches this
backend maintains:

* per-table **row views** — the shared memoized dict form of each row,
  built once per state instead of per scan;
* per-``(table, columns)`` **hash indexes** — join-key and probe-key maps
  (:func:`~repro.algebra.evaluate.build_join_index`), so compiled scans
  and joins are O(matches) rather than O(rows).

Both caches are invalidated wholesale on every write
(``apply_delta`` / ``migrate`` / ``replace_contents``): state swaps are
whole-object replacements, never in-place mutation, so snapshots held by
the session journal stay valid forever and a stale cache is impossible
by construction.  Constraint checking on SaveChanges is *delta-scoped*
(:func:`~repro.relational.constraints.check_delta`): only tables and
rows the delta touches are re-verified, exact because the pre-state is
always consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algebra.evaluate import (
    RowDict,
    StoreContext,
    build_join_index,
    evaluate_query,
)
from repro.algebra.queries import Query
from repro.backend.base import StoreBackend
from repro.errors import ValidationError
from repro.query.dml import StoreDelta, apply_delta
from repro.relational.constraints import (
    ConstraintViolation,
    check_all,
    check_delta,
)
from repro.relational.instances import Row, StoreState, row_view
from repro.relational.schema import StoreSchema


@dataclass(frozen=True)
class IndexStats:
    """Serving-cache counters of one :class:`MemoryBackend`."""

    builds: int
    hits: int
    invalidations: int
    entries: int
    compiled_runs: int


class MemoryBackend(StoreBackend):
    """Rows live in a :class:`StoreState`; queries run in the interpreter,
    cached plans through compiled physical plans."""

    name = "memory"
    compiles_plans = True

    def __init__(self, store_state: StoreState) -> None:
        self._state = store_state
        self._row_views: Dict[str, List[RowDict]] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}
        self._index_builds = 0
        self._index_hits = 0
        self._index_invalidations = 0
        self._compiled_runs = 0

    @property
    def schema(self) -> StoreSchema:
        return self._state.schema

    # -- reading -------------------------------------------------------
    def rows(self, table_name: str) -> Tuple[Row, ...]:
        return self._state.rows(table_name)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        return evaluate_query(query, StoreContext(self._state))

    def to_store_state(self) -> StoreState:
        return self._state

    def row_count(self) -> int:
        return self._state.row_count()

    # -- compiled serving path -----------------------------------------
    def physical_rows(self, table_name: str) -> List[RowDict]:
        """Shared dict views of one table's rows, cached per state.

        Consumers (compiled plans) must treat rows as immutable."""
        views = self._row_views.get(table_name)
        if views is None:
            views = [row_view(r) for r in self._state.rows(table_name)]
            self._row_views[table_name] = views
        return views

    def index_for(
        self, table_name: str, columns: Tuple[str, ...]
    ) -> Dict[Tuple[object, ...], List[RowDict]]:
        """The hash index of *table_name* keyed by *columns*, built on
        first use and reused until the next write."""
        key = (table_name, columns)
        index = self._indexes.get(key)
        if index is None:
            index = build_join_index(self.physical_rows(table_name), columns)
            self._indexes[key] = index
            self._index_builds += 1
        else:
            self._index_hits += 1
        return index

    def run_compiled_plan(self, plan_set, params: Tuple[object, ...]):
        self._compiled_runs += 1
        return plan_set.execute(self, params)

    def clear_caches(self) -> None:
        """Drop row-view and index caches (every write path calls this)."""
        if self._row_views or self._indexes:
            self._index_invalidations += 1
        self._row_views = {}
        self._indexes = {}

    def index_stats(self) -> IndexStats:
        return IndexStats(
            builds=self._index_builds,
            hits=self._index_hits,
            invalidations=self._index_invalidations,
            entries=len(self._indexes),
            compiled_runs=self._compiled_runs,
        )

    # -- writing -------------------------------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        candidate = apply_delta(self._state, delta)
        violations = check_delta(self._state, candidate, delta)
        if violations:
            detail = "; ".join(str(v) for v in violations[:5])
            raise ValidationError(
                f"update would violate store constraints: {detail}",
                check="save-changes",
            )
        self._state = candidate
        self.clear_caches()

    def migrate(self, script, new_schema: StoreSchema, target: StoreState) -> None:
        # The interpreter needs no DDL: the migrated state was computed
        # through the views, so the script's net effect *is* `target`
        # (the differential suite holds SQLite's execution of the same
        # script to this answer).
        self._state = target
        self.clear_caches()

    def replace_contents(self, state: StoreState) -> None:
        self._state = state
        self.clear_caches()

    # -- integrity -----------------------------------------------------
    def check_constraints(self) -> List[ConstraintViolation]:
        return check_all(self._state)

    def __str__(self) -> str:
        return f"MemoryBackend({self._state.row_count()} rows)"
