"""The in-memory store backend: the original interpreter behind the
:class:`~repro.backend.base.StoreBackend` protocol.

Ad-hoc queries evaluate with :mod:`repro.algebra.evaluate` (the reference
semantics every other backend must match); *cached* plans run through the
compiled physical-plan path (``compiles_plans``,
:mod:`repro.backend.physical`), which feeds on two serving caches:

* per-table **row views** — the shared memoized dict form of each row,
  built once per state instead of per scan;
* per-``(table, columns)`` **hash indexes** — join-key and probe-key maps
  (:func:`~repro.algebra.evaluate.build_join_index`), so compiled scans
  and joins are O(matches) rather than O(rows).

Both caches live on a :class:`MemoryReadView` pinned to one immutable
store state.  The backend always holds the view over its *current* state
and replaces it wholesale on every write (``apply_delta`` / ``migrate``
/ ``replace_contents``): state swaps are whole-object replacements,
never in-place mutation, so the epoch engine can publish a view as a
snapshot and readers on an old epoch keep byte-identical answers forever
while writers move the backend on — a stale cache is impossible by
construction.  Constraint checking on SaveChanges is *delta-scoped*
(:func:`~repro.relational.constraints.check_delta`): only tables and
rows the delta touches are re-verified, exact because the pre-state is
always consistent.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.algebra.evaluate import (
    RowDict,
    StoreContext,
    build_join_index,
    evaluate_query,
)
from repro.algebra.queries import Query
from repro.backend.base import ReadView, StoreBackend
from repro.errors import ValidationError
from repro.query.dml import StoreDelta, apply_delta
from repro.relational.constraints import (
    ConstraintViolation,
    check_all,
    check_delta,
)
from repro.relational.instances import Row, StoreState, row_view
from repro.relational.schema import StoreSchema


@dataclass(frozen=True)
class IndexStats:
    """Serving-cache counters of one :class:`MemoryBackend`."""

    builds: int
    hits: int
    invalidations: int
    entries: int
    compiled_runs: int


class MemoryReadView(ReadView):
    """An immutable snapshot of one store state plus its serving caches.

    State objects are never mutated in place, so a view holding the
    state reference is a true snapshot: readers on an old epoch keep
    their world while writers publish new views.  The view quacks like a
    backend for the serving path (``schema``, ``compiles_plans``,
    ``run_query``, ``physical_rows`` / ``index_for`` for compiled plans);
    caches build lazily under a lock so concurrent readers share one
    build.  Counters are reported through the owning backend (when any)
    so serving stats stay continuous across epochs.
    """

    name = "memory"
    compiles_plans = True
    prepares_sql = False
    snapshot = True

    def __init__(
        self, state: StoreState, backend: Optional["MemoryBackend"] = None
    ) -> None:
        self._state = state
        self._backend = backend
        self._row_views: Dict[str, List[RowDict]] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}
        self._lock = threading.Lock()

    @property
    def schema(self) -> StoreSchema:
        return self._state.schema

    @contextmanager
    def acquire(self) -> Iterator["MemoryReadView"]:
        yield self

    def to_store_state(self) -> StoreState:
        return self._state

    def rows(self, table_name: str) -> Tuple[Row, ...]:
        return self._state.rows(table_name)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        return evaluate_query(query, StoreContext(self._state))

    def physical_rows(self, table_name: str) -> List[RowDict]:
        """Shared dict views of one table's rows, cached per state.

        Consumers (compiled plans) must treat rows as immutable."""
        with self._lock:
            views = self._row_views.get(table_name)
            if views is None:
                views = [row_view(r) for r in self._state.rows(table_name)]
                self._row_views[table_name] = views
            return views

    def index_for(
        self, table_name: str, columns: Tuple[str, ...]
    ) -> Dict[Tuple[object, ...], List[RowDict]]:
        """The hash index of *table_name* keyed by *columns*, built on
        first use and reused for the lifetime of this snapshot."""
        key = (table_name, columns)
        with self._lock:
            index = self._indexes.get(key)
        backend = self._backend
        if index is not None:
            if backend is not None:
                backend._index_hits += 1
            return index
        rows = self.physical_rows(table_name)
        built = build_join_index(rows, columns)
        with self._lock:
            # last write wins on a build race; builds are deterministic
            # over the pinned state, so the values agree
            self._indexes[key] = built
            index = self._indexes[key]
        if backend is not None:
            backend._index_builds += 1
        return index

    def run_compiled_plan(self, plan_set, params: Tuple[object, ...]):
        if self._backend is not None:
            self._backend._compiled_runs += 1
        return plan_set.execute(self, params)

    def cache_entries(self) -> int:
        with self._lock:
            return len(self._indexes)


class MemoryBackend(StoreBackend):
    """Rows live in a :class:`StoreState`; queries run in the interpreter,
    cached plans through compiled physical plans on the current
    :class:`MemoryReadView`."""

    name = "memory"
    compiles_plans = True
    snapshot_reads = True

    def __init__(self, store_state: StoreState) -> None:
        self._index_builds = 0
        self._index_hits = 0
        self._index_invalidations = 0
        self._compiled_runs = 0
        self._state = store_state
        self._view = MemoryReadView(store_state, self)

    @property
    def schema(self) -> StoreSchema:
        return self._state.schema

    # -- reading -------------------------------------------------------
    def rows(self, table_name: str) -> Tuple[Row, ...]:
        return self._state.rows(table_name)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        return evaluate_query(query, StoreContext(self._state))

    def to_store_state(self) -> StoreState:
        return self._state

    def row_count(self) -> int:
        return self._state.row_count()

    # -- compiled serving path -----------------------------------------
    def physical_rows(self, table_name: str) -> List[RowDict]:
        return self._view.physical_rows(table_name)

    def index_for(
        self, table_name: str, columns: Tuple[str, ...]
    ) -> Dict[Tuple[object, ...], List[RowDict]]:
        return self._view.index_for(table_name, columns)

    def run_compiled_plan(self, plan_set, params: Tuple[object, ...]):
        return self._view.run_compiled_plan(plan_set, params)

    def read_view(self) -> MemoryReadView:
        """The view over the *current* state — published as an epoch
        snapshot by the engine; write paths replace it wholesale, so a
        published view is immutable from that moment on."""
        return self._view

    def clear_caches(self) -> None:
        """Swap in a fresh view over the current state (every write path
        calls this); old views — and the epochs holding them — are
        untouched."""
        if self._view._row_views or self._view._indexes:
            self._index_invalidations += 1
        self._view = MemoryReadView(self._state, self)

    def index_stats(self) -> IndexStats:
        return IndexStats(
            builds=self._index_builds,
            hits=self._index_hits,
            invalidations=self._index_invalidations,
            entries=self._view.cache_entries(),
            compiled_runs=self._compiled_runs,
        )

    # -- writing -------------------------------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        candidate = apply_delta(self._state, delta)
        violations = check_delta(self._state, candidate, delta)
        if violations:
            detail = "; ".join(str(v) for v in violations[:5])
            raise ValidationError(
                f"update would violate store constraints: {detail}",
                check="save-changes",
            )
        self._state = candidate
        self.clear_caches()

    def migrate(self, script, new_schema: StoreSchema, target: StoreState) -> None:
        # The interpreter needs no DDL: the migrated state was computed
        # through the views, so the script's net effect *is* `target`
        # (the differential suite holds SQLite's execution of the same
        # script to this answer).
        self._state = target
        self.clear_caches()

    def replace_contents(self, state: StoreState) -> None:
        self._state = state
        self.clear_caches()

    # -- integrity -----------------------------------------------------
    def check_constraints(self) -> List[ConstraintViolation]:
        return check_all(self._state)

    def __str__(self) -> str:
        return f"MemoryBackend({self._state.row_count()} rows)"
