"""The in-memory store backend: the original interpreter behind the
:class:`~repro.backend.base.StoreBackend` protocol.

Queries evaluate with :mod:`repro.algebra.evaluate` (the reference
semantics every other backend must match); constraint checking runs the
concrete PK/FK checks of :mod:`repro.relational.constraints`.  State
swaps are whole-object replacements, never in-place mutation, so
snapshots held by the session journal stay valid forever.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algebra.evaluate import StoreContext, evaluate_query
from repro.algebra.queries import Query
from repro.backend.base import StoreBackend
from repro.errors import ValidationError
from repro.query.dml import StoreDelta, apply_delta
from repro.relational.constraints import ConstraintViolation, check_all
from repro.relational.instances import Row, StoreState
from repro.relational.schema import StoreSchema


class MemoryBackend(StoreBackend):
    """Rows live in a :class:`StoreState`; queries run in the interpreter."""

    name = "memory"

    def __init__(self, store_state: StoreState) -> None:
        self._state = store_state

    @property
    def schema(self) -> StoreSchema:
        return self._state.schema

    # -- reading -------------------------------------------------------
    def rows(self, table_name: str) -> Tuple[Row, ...]:
        return self._state.rows(table_name)

    def run_query(self, query: Query) -> List[Dict[str, object]]:
        return evaluate_query(query, StoreContext(self._state))

    def to_store_state(self) -> StoreState:
        return self._state

    def row_count(self) -> int:
        return self._state.row_count()

    # -- writing -------------------------------------------------------
    def apply_delta(self, delta: StoreDelta) -> None:
        candidate = apply_delta(self._state, delta)
        violations = check_all(candidate)
        if violations:
            detail = "; ".join(str(v) for v in violations[:5])
            raise ValidationError(
                f"update would violate store constraints: {detail}",
                check="save-changes",
            )
        self._state = candidate

    def migrate(self, script, new_schema: StoreSchema, target: StoreState) -> None:
        # The interpreter needs no DDL: the migrated state was computed
        # through the views, so the script's net effect *is* `target`
        # (the differential suite holds SQLite's execution of the same
        # script to this answer).
        self._state = target

    def replace_contents(self, state: StoreState) -> None:
        self._state = state

    # -- integrity -----------------------------------------------------
    def check_constraints(self) -> List[ConstraintViolation]:
        return check_all(self._state)

    def __str__(self) -> str:
        return f"MemoryBackend({self._state.row_count()} rows)"
