"""Generating relational DDL from a :class:`StoreSchema`.

Emits ``CREATE TABLE`` statements with primary keys, ``NOT NULL``
markers, ``CHECK`` constraints for finite domains (the gender-style
restricted domains of Section 3.3) and ``FOREIGN KEY`` clauses, ordered
so that referenced tables are created before their referrers.  The same
ordering logic, reversed, sequences ``DROP TABLE`` statements.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.backend.sqlgen import quote, _inline_literal
from repro.edm.types import Domain
from repro.relational.schema import Column, StoreSchema, Table

#: domain base -> SQLite column type
SQL_TYPES = {
    "int": "INTEGER",
    "string": "TEXT",
    "bool": "BOOLEAN",
    "decimal": "NUMERIC",
    "date": "TEXT",
}


def column_type(domain: Domain) -> str:
    return SQL_TYPES[domain.base]


def column_ddl(column: Column) -> str:
    parts = [quote(column.name), column_type(column.domain)]
    if not column.nullable:
        parts.append("NOT NULL")
    if column.domain.values is not None:
        rendered = ", ".join(
            _inline_literal(v) for v in sorted(column.domain.values, key=repr)
        )
        # NULL IN (...) is UNKNOWN, which CHECK treats as pass — so the
        # constraint only restricts non-null values, like Domain.contains.
        parts.append(f"CHECK ({quote(column.name)} IN ({rendered}))")
    return " ".join(parts)


def create_table_sql(table: Table, name: Optional[str] = None) -> str:
    """``CREATE TABLE`` for *table*; *name* overrides the table name
    (used by rebuild migrations that create a temporary twin)."""
    lines = [column_ddl(column) for column in table.columns]
    key = ", ".join(quote(c) for c in table.primary_key)
    lines.append(f"PRIMARY KEY ({key})")
    for fk in table.foreign_keys:
        cols = ", ".join(quote(c) for c in fk.columns)
        refs = ", ".join(quote(c) for c in fk.ref_columns)
        lines.append(
            f"FOREIGN KEY ({cols}) REFERENCES {quote(fk.ref_table)} ({refs})"
        )
    body = ",\n  ".join(lines)
    return f"CREATE TABLE {quote(name or table.name)} (\n  {body}\n)"


def drop_table_sql(name: str) -> str:
    return f"DROP TABLE {quote(name)}"


def creation_order(tables: Iterable[Table]) -> List[Table]:
    """Topologically sort so referenced tables come before referrers.

    Self-references are ignored; on a reference cycle the remaining
    tables are appended in name order (SQLite resolves foreign keys by
    name at DML time, so creation order is only a nicety there).
    """
    tables = list(tables)
    by_name: Dict[str, Table] = {t.name: t for t in tables}
    deps: Dict[str, Set[str]] = {
        t.name: {
            fk.ref_table
            for fk in t.foreign_keys
            if fk.ref_table != t.name and fk.ref_table in by_name
        }
        for t in tables
    }
    ordered: List[Table] = []
    placed: Set[str] = set()
    while len(ordered) < len(tables):
        ready = sorted(
            name
            for name, wants in deps.items()
            if name not in placed and wants <= placed
        )
        if not ready:  # cycle: emit the rest deterministically
            ready = sorted(name for name in deps if name not in placed)
        for name in ready:
            ordered.append(by_name[name])
            placed.add(name)
    return ordered


def drop_order(tables: Iterable[Table]) -> List[Table]:
    """Referrers before referees — safe deletion order."""
    return list(reversed(creation_order(tables)))


def schema_ddl(schema: StoreSchema) -> List[str]:
    """All ``CREATE TABLE`` statements for *schema*, dependency-ordered."""
    return [create_table_sql(t) for t in creation_order(schema.tables)]


def schema_ddl_text(schema: StoreSchema) -> str:
    return ";\n\n".join(schema_ddl(schema)) + ";"


def statements_text(statements: Sequence[str]) -> str:
    return ";\n".join(statements) + (";" if statements else "")
