"""Attribute domains and attribute definitions for the EDM-subset client model.

The paper's ``AddEntity`` SMO requires ``dom(A) ⊆ dom(f(A))`` for every mapped
attribute (Section 3.1), so domains need a containment test.  We model a small
domain algebra: primitive base types, optionally restricted to a finite set of
values (used for discriminators and for the gender example in Section 3.3,
where tautology checking must know that ``gender`` only takes values M and F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.errors import SchemaError

#: Base types supported by the domain algebra.
BASE_TYPES = ("int", "string", "bool", "decimal", "date")


@dataclass(frozen=True)
class Domain:
    """A value domain: a base type, optionally restricted to finite values.

    ``Domain("string", frozenset({"M", "F"}))`` is the domain of the gender
    attribute in Section 3.3.  An unrestricted domain has ``values=None``.
    """

    base: str
    values: Optional[FrozenSet[object]] = None

    def __post_init__(self) -> None:
        if self.base not in BASE_TYPES:
            raise SchemaError(f"unknown base type {self.base!r}; expected one of {BASE_TYPES}")
        if self.values is not None and not self.values:
            raise SchemaError("a restricted domain must have at least one value")

    def is_subdomain_of(self, other: "Domain") -> bool:
        """Return True if every value of this domain belongs to *other*.

        This is the ``dom(A) ⊆ dom(f(A))`` test of Section 3.1.
        """
        if self.base != other.base:
            return False
        if other.values is None:
            return True
        if self.values is None:
            return False
        return self.values <= other.values

    def contains(self, value: object) -> bool:
        """Return True if *value* is a member of this domain (None excluded)."""
        if value is None:
            return False
        if self.base == "int" and not isinstance(value, int):
            return False
        if self.base == "string" and not isinstance(value, str):
            return False
        if self.base == "bool" and not isinstance(value, bool):
            return False
        if self.values is not None and value not in self.values:
            return False
        return True

    def sample_values(self) -> tuple:
        """Return a few representative values, used by canonical instances."""
        if self.values is not None:
            return tuple(sorted(self.values, key=repr))
        if self.base == "int":
            return (0, 1, 2)
        if self.base == "bool":
            return (True, False)
        if self.base == "decimal":
            return (0, 1)
        if self.base == "date":
            return ("2013-06-22", "2013-06-23")
        return ("a", "b")

    def __str__(self) -> str:
        if self.values is None:
            return self.base
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.base}{{{rendered}}}"


#: Convenience singletons for the common unrestricted domains.
INT = Domain("int")
STRING = Domain("string")
BOOL = Domain("bool")
DECIMAL = Domain("decimal")
DATE = Domain("date")


def enum_domain(*values: object, base: str = "string") -> Domain:
    """Build a finite domain, e.g. ``enum_domain("M", "F")`` for gender."""
    return Domain(base, frozenset(values))


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of an entity type.

    ``nullable`` controls whether instances may carry ``None`` and whether
    ``A IS NULL`` conditions are satisfiable for this attribute.
    """

    name: str
    domain: Domain = field(default=STRING)
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")

    def __str__(self) -> str:
        suffix = "?" if self.nullable else ""
        return f"{self.name}: {self.domain}{suffix}"
