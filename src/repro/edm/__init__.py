"""EDM-subset client model: entity types, associations, schemas, instances."""

from repro.edm.association import AssociationEnd, AssociationSet, Multiplicity
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.entity import EntitySet, EntityType
from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.edm.types import (
    BOOL,
    DATE,
    DECIMAL,
    INT,
    STRING,
    Attribute,
    Domain,
    enum_domain,
)

__all__ = [
    "Attribute",
    "AssociationEnd",
    "AssociationSet",
    "BOOL",
    "ClientSchema",
    "ClientSchemaBuilder",
    "ClientState",
    "DATE",
    "DECIMAL",
    "Domain",
    "Entity",
    "EntitySet",
    "EntityType",
    "INT",
    "Multiplicity",
    "STRING",
    "enum_domain",
]
