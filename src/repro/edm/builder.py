"""A fluent builder for client schemas.

Keeps examples and workload generators readable::

    schema = (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Department", STRING)])
        .entity_set("Persons", "Person")
        .association(
            "Supports", "Customer", "Employee",
            mult1="*", mult2="0..1", set1="Persons", set2="Persons",
        )
        .build()
    )
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.edm.association import AssociationEnd, AssociationSet, Multiplicity
from repro.edm.entity import EntitySet, EntityType
from repro.edm.schema import ClientSchema
from repro.edm.types import Attribute, Domain, STRING

AttrSpec = Union[Attribute, Tuple[str, Domain], Tuple[str, Domain, bool], str]

_MULTIPLICITIES = {m.value: m for m in Multiplicity}


def _as_attribute(spec: AttrSpec, nullable_default: bool = False) -> Attribute:
    if isinstance(spec, Attribute):
        return spec
    if isinstance(spec, str):
        return Attribute(spec, STRING, nullable_default)
    if len(spec) == 2:
        name, domain = spec
        return Attribute(name, domain, nullable_default)
    name, domain, nullable = spec
    return Attribute(name, domain, nullable)


def _as_multiplicity(value: Union[str, Multiplicity]) -> Multiplicity:
    if isinstance(value, Multiplicity):
        return value
    return _MULTIPLICITIES[value]


class ClientSchemaBuilder:
    """Accumulates definitions, then :meth:`build` produces a ClientSchema.

    ``entity`` with a ``key`` argument declares a hierarchy root and, unless
    ``auto_set=False``, a same-named-plural entity set is *not* created —
    sets are always explicit to keep the mapping story unambiguous.
    """

    def __init__(self) -> None:
        self._schema = ClientSchema()

    def entity(
        self,
        name: str,
        parent: Optional[str] = None,
        key: Sequence[AttrSpec] = (),
        attrs: Sequence[AttrSpec] = (),
        abstract: bool = False,
    ) -> "ClientSchemaBuilder":
        key_attrs = [_as_attribute(a) for a in key]
        other_attrs = [_as_attribute(a) for a in attrs]
        self._schema.add_entity_type(
            EntityType(
                name=name,
                parent=parent,
                attributes=tuple(key_attrs + other_attrs),
                key=tuple(a.name for a in key_attrs),
                abstract=abstract,
            )
        )
        return self

    def entity_set(self, name: str, root_type: str) -> "ClientSchemaBuilder":
        self._schema.add_entity_set(EntitySet(name, root_type))
        return self

    def association(
        self,
        name: str,
        type1: str,
        type2: str,
        mult1: Union[str, Multiplicity] = "*",
        mult2: Union[str, Multiplicity] = "*",
        set1: Optional[str] = None,
        set2: Optional[str] = None,
        role1: Optional[str] = None,
        role2: Optional[str] = None,
    ) -> "ClientSchemaBuilder":
        entity_set1 = set1 if set1 is not None else self._schema.set_of_type(type1).name
        entity_set2 = set2 if set2 is not None else self._schema.set_of_type(type2).name
        self._schema.add_association(
            AssociationSet(
                name=name,
                end1=AssociationEnd(type1, _as_multiplicity(mult1), role1),
                end2=AssociationEnd(type2, _as_multiplicity(mult2), role2),
                entity_set1=entity_set1,
                entity_set2=entity_set2,
            )
        )
        return self

    def build(self) -> ClientSchema:
        self._schema.validate()
        return self._schema
