"""Client states: concrete instances of a client schema.

A client state assigns to every entity set a set of entities (each with a
concrete type and attribute values) and to every association set a set of
key pairs.  States are the ``c`` in the paper's ``M ⊆ C × S``; the empirical
roundtrip oracle compares ``Q(V(c))`` with ``c`` for equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError, SchemaError


@dataclass(frozen=True)
class Entity:
    """An entity instance: its concrete type and attribute values.

    ``values`` must assign every attribute of the concrete type; nullable
    attributes may be ``None``.  Entities are hashable so states can be
    compared as sets.
    """

    concrete_type: str
    values: Tuple[Tuple[str, object], ...]

    @staticmethod
    def of(concrete_type: str, **values: object) -> "Entity":
        return Entity(concrete_type, tuple(sorted(values.items())))

    @property
    def value_map(self) -> Dict[str, object]:
        return dict(self.values)

    def __getitem__(self, attr: str) -> object:
        for name, value in self.values:
            if name == attr:
                return value
        raise EvaluationError(
            f"entity of type {self.concrete_type!r} has no attribute {attr!r}"
        )

    def key_tuple(self, key: Tuple[str, ...]) -> Tuple[object, ...]:
        return tuple(self[k] for k in key)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values)
        return f"{self.concrete_type}({rendered})"


class ClientState:
    """An instance of a :class:`ClientSchema`.

    Entities are stored per entity set, keyed by their key tuple (dicts
    preserve insertion order, and key-addressed storage makes update and
    removal O(1) — the incremental write path edits large states in
    place); associations per association set as tuples of role-qualified
    key values, with per-end indexes for delta-propagation probes.

    A :class:`~repro.ivm.clientdelta.ClientDelta` (or anything with the
    same ``record_entity`` / ``record_association`` methods) can be
    attached with :meth:`record_into`; every mutation is then reported to
    it as a net change.
    """

    def __init__(self, schema: ClientSchema) -> None:
        self.schema = schema
        # populated lazily: a 1000-set schema must not pay O(sets) per state
        self._entities: Dict[str, Dict[Tuple[object, ...], Entity]] = {}
        # ordered set of flat (key1 + key2) tuples per association
        self._associations: Dict[str, Dict[Tuple[object, ...], None]] = {}
        # per-end probe indexes: end-key tuple -> list of flat pairs
        self._assoc_by_end: Dict[
            str,
            Tuple[
                Dict[Tuple[object, ...], List[Tuple[object, ...]]],
                Dict[Tuple[object, ...], List[Tuple[object, ...]]],
            ],
        ] = {}
        self._recorder: Optional[object] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_into(self, recorder: object) -> None:
        """Report every subsequent mutation as a net change to *recorder*."""
        self._recorder = recorder

    def stop_recording(self) -> None:
        self._recorder = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def entity_key(self, entity: Entity) -> Tuple[object, ...]:
        """The entity's key tuple (hierarchies share the root's key)."""
        return entity.key_tuple(self.schema.key_of(entity.concrete_type))

    def _validate_entity(self, set_name: str, entity: Entity) -> Tuple[object, ...]:
        """Schema-check one entity against *set_name*; returns its key."""
        entity_set = self.schema.entity_set(set_name)
        if entity.concrete_type not in self.schema.descendants_or_self(entity_set.root_type):
            raise SchemaError(
                f"type {entity.concrete_type!r} does not belong to set {set_name!r}"
            )
        if self.schema.entity_type(entity.concrete_type).abstract:
            raise SchemaError(
                f"cannot instantiate abstract type {entity.concrete_type!r}"
            )
        expected = set(self.schema.attribute_names_of(entity.concrete_type))
        provided = {name for name, _ in entity.values}
        if expected != provided:
            raise SchemaError(
                f"entity of {entity.concrete_type!r} must assign exactly {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for name, value in entity.values:
            attribute = self.schema.attribute_of(entity.concrete_type, name)
            if value is None:
                if not attribute.nullable:
                    raise SchemaError(
                        f"attribute {name!r} of {entity.concrete_type!r} is not nullable"
                    )
            elif not attribute.domain.contains(value):
                raise SchemaError(
                    f"value {value!r} outside domain of {entity.concrete_type}.{name}"
                )
        return self.entity_key(entity)

    def add_entity(self, set_name: str, entity: Entity) -> Entity:
        if set_name not in self._entities:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            self._entities[set_name] = {}
        key_value = self._validate_entity(set_name, entity)
        keyed = self._entities[set_name]
        if key_value in keyed:
            raise SchemaError(
                f"duplicate key {key_value!r} in entity set {set_name!r}"
            )
        keyed[key_value] = entity
        if self._recorder is not None:
            self._recorder.record_entity(set_name, key_value, None, entity)
        return entity

    def update_entity(self, set_name: str, entity: Entity) -> Entity:
        """Replace the entity with *entity*'s key by *entity* in place."""
        if set_name not in self._entities:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            self._entities[set_name] = {}
        key_value = self._validate_entity(set_name, entity)
        keyed = self._entities[set_name]
        old = keyed.get(key_value)
        if old is None:
            raise SchemaError(
                f"no entity with key {key_value!r} in entity set {set_name!r}"
            )
        keyed[key_value] = entity
        if self._recorder is not None:
            self._recorder.record_entity(set_name, key_value, old, entity)
        return entity

    def remove_entity(self, set_name: str, key_value: Tuple[object, ...]) -> Entity:
        """Remove and return the entity with key *key_value*.

        Associations referencing the entity are left in place (like FK
        checking, referential consistency is enforced at save time).
        """
        key_value = tuple(key_value)
        old = self._entities.get(set_name, {}).pop(key_value, None)
        if old is None:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            raise SchemaError(
                f"no entity with key {key_value!r} in entity set {set_name!r}"
            )
        if self._recorder is not None:
            self._recorder.record_entity(set_name, key_value, old, None)
        return old

    def add_association(self, assoc_name: str, key1: Tuple[object, ...], key2: Tuple[object, ...]) -> None:
        if assoc_name not in self._associations:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            self._associations[assoc_name] = {}
            self._assoc_by_end[assoc_name] = ({}, {})
        association = self.schema.association(assoc_name)
        key1, key2 = tuple(key1), tuple(key2)
        end1_entity = self._find_by_key(association.entity_set1, key1)
        end2_entity = self._find_by_key(association.entity_set2, key2)
        if end1_entity is None or end2_entity is None:
            raise SchemaError(
                f"association {assoc_name!r} references missing entities {key1!r}/{key2!r}"
            )
        for end, entity in ((association.end1, end1_entity), (association.end2, end2_entity)):
            if end.entity_type not in self.schema.ancestors_or_self(entity.concrete_type):
                raise SchemaError(
                    f"entity {entity} cannot participate as {end.role_name!r} "
                    f"in association {assoc_name!r}"
                )
        pair = key1 + key2
        if pair in self._associations[assoc_name]:
            raise SchemaError(f"duplicate association tuple {pair!r} in {assoc_name!r}")
        self._check_multiplicity(association, key1, key2)
        self._associations[assoc_name][pair] = None
        by_end1, by_end2 = self._assoc_by_end[assoc_name]
        by_end1.setdefault(key1, []).append(pair)
        by_end2.setdefault(key2, []).append(pair)
        if self._recorder is not None:
            self._recorder.record_association(assoc_name, pair, +1)

    def remove_association(self, assoc_name: str, key1: Tuple[object, ...], key2: Tuple[object, ...]) -> None:
        key1, key2 = tuple(key1), tuple(key2)
        pair = key1 + key2
        pairs = self._associations.get(assoc_name, {})
        if pair not in pairs:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            raise SchemaError(
                f"association tuple {pair!r} not present in {assoc_name!r}"
            )
        del pairs[pair]
        by_end1, by_end2 = self._assoc_by_end[assoc_name]
        by_end1[key1].remove(pair)
        if not by_end1[key1]:
            del by_end1[key1]
        by_end2[key2].remove(pair)
        if not by_end2[key2]:
            del by_end2[key2]
        if self._recorder is not None:
            self._recorder.record_association(assoc_name, pair, -1)

    def _check_multiplicity(self, association, key1, key2) -> None:
        by_end1, by_end2 = self._assoc_by_end.get(association.name, ({}, {}))
        if association.end2.multiplicity.at_most_one():
            if key1 in by_end1:
                raise SchemaError(
                    f"multiplicity {association.end2.multiplicity} violated on end "
                    f"{association.end2.role_name!r} of {association.name!r}"
                )
        if association.end1.multiplicity.at_most_one():
            if key2 in by_end2:
                raise SchemaError(
                    f"multiplicity {association.end1.multiplicity} violated on end "
                    f"{association.end1.role_name!r} of {association.name!r}"
                )

    def _find_by_key(self, set_name: str, key_value: Tuple[object, ...]) -> Optional[Entity]:
        return self._entities.get(set_name, {}).get(tuple(key_value))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def entities(self, set_name: str) -> Tuple[Entity, ...]:
        if set_name not in self._entities:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            return ()
        return tuple(self._entities[set_name].values())

    def entity_by_key(self, set_name: str, key_value: Tuple[object, ...]) -> Optional[Entity]:
        """Keyed lookup (the incremental write path's probe primitive)."""
        if set_name not in self._entities and not self.schema.has_entity_set(set_name):
            raise SchemaError(f"unknown entity set {set_name!r}")
        return self._find_by_key(set_name, key_value)

    def associations(self, assoc_name: str) -> Tuple[Tuple[object, ...], ...]:
        if assoc_name not in self._associations:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            return ()
        return tuple(self._associations[assoc_name])

    def associations_with_end(
        self, assoc_name: str, end: int, key_value: Tuple[object, ...]
    ) -> Tuple[Tuple[object, ...], ...]:
        """All pairs of *assoc_name* whose end ``end`` (0 or 1) equals
        *key_value* — the association-side probe index."""
        if assoc_name not in self._associations:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            return ()
        index = self._assoc_by_end[assoc_name][end]
        return tuple(index.get(tuple(key_value), ()))

    def entity_count(self) -> int:
        return sum(len(v) for v in self._entities.values())

    # ------------------------------------------------------------------
    # Comparison / embedding
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, FrozenSet]:
        """A canonical, comparison-friendly rendering of the state."""
        result: Dict[str, FrozenSet] = {}
        for set_name, entities in self._entities.items():
            if entities:
                result[f"set:{set_name}"] = frozenset(entities.values())
        for assoc_name, pairs in self._associations.items():
            if pairs:
                result[f"assoc:{assoc_name}"] = frozenset(pairs)
        return result

    def equals(self, other: "ClientState") -> bool:
        return self.snapshot() == other.snapshot()

    def embed_into(self, schema: ClientSchema) -> "ClientState":
        """The paper's ``f(c)``: the same state read under an evolved schema.

        Shared components keep their contents; components new in *schema*
        are empty.  Attributes new in *schema* (AddProperty) are padded
        with NULL when nullable; the embedding is undefined — and raises —
        when they are not.  Components of ``self`` missing from *schema*
        must be empty, otherwise the embedding is undefined.
        """
        result = ClientState(schema)
        for set_name, entities in self._entities.items():
            if not schema.has_entity_set(set_name):
                if entities:
                    raise SchemaError(
                        f"cannot embed: entity set {set_name!r} dropped but non-empty"
                    )
                continue
            for entity in entities.values():
                expected = schema.attribute_names_of(entity.concrete_type)
                provided = {name for name, _ in entity.values}
                gained = [
                    name for name in expected
                    if name not in provided
                    and schema.attribute_of(entity.concrete_type, name).nullable
                ]
                if gained:
                    entity = Entity(
                        entity.concrete_type,
                        tuple(sorted(
                            entity.values + tuple((n, None) for n in gained)
                        )),
                    )
                result.add_entity(set_name, entity)
        for assoc_name, pairs in self._associations.items():
            if not schema.has_association(assoc_name):
                if pairs:
                    raise SchemaError(
                        f"cannot embed: association {assoc_name!r} dropped but non-empty"
                    )
                continue
            association = schema.association(assoc_name)
            key1_len = len(schema.key_of(association.end1.entity_type))
            for pair in pairs:
                result.add_association(assoc_name, pair[:key1_len], pair[key1_len:])
        return result

    def __str__(self) -> str:
        lines = ["ClientState:"]
        for set_name, entities in self._entities.items():
            lines.append(f"  {set_name}: {[str(e) for e in entities.values()]}")
        for assoc_name, pairs in self._associations.items():
            lines.append(f"  {assoc_name}: {list(pairs)}")
        return "\n".join(lines)
