"""Client states: concrete instances of a client schema.

A client state assigns to every entity set a set of entities (each with a
concrete type and attribute values) and to every association set a set of
key pairs.  States are the ``c`` in the paper's ``M ⊆ C × S``; the empirical
roundtrip oracle compares ``Q(V(c))`` with ``c`` for equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError, SchemaError


@dataclass(frozen=True)
class Entity:
    """An entity instance: its concrete type and attribute values.

    ``values`` must assign every attribute of the concrete type; nullable
    attributes may be ``None``.  Entities are hashable so states can be
    compared as sets.
    """

    concrete_type: str
    values: Tuple[Tuple[str, object], ...]

    @staticmethod
    def of(concrete_type: str, **values: object) -> "Entity":
        return Entity(concrete_type, tuple(sorted(values.items())))

    @property
    def value_map(self) -> Dict[str, object]:
        return dict(self.values)

    def __getitem__(self, attr: str) -> object:
        for name, value in self.values:
            if name == attr:
                return value
        raise EvaluationError(
            f"entity of type {self.concrete_type!r} has no attribute {attr!r}"
        )

    def key_tuple(self, key: Tuple[str, ...]) -> Tuple[object, ...]:
        return tuple(self[k] for k in key)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values)
        return f"{self.concrete_type}({rendered})"


class ClientState:
    """An instance of a :class:`ClientSchema`.

    Entities are stored per entity set; associations per association set as
    tuples of role-qualified key values.
    """

    def __init__(self, schema: ClientSchema) -> None:
        self.schema = schema
        # populated lazily: a 1000-set schema must not pay O(sets) per state
        self._entities: Dict[str, List[Entity]] = {}
        self._associations: Dict[str, List[Tuple[object, ...]]] = {}
        # parallel key indexes: bulk loads (10^5-entity benchmark states)
        # must not pay O(entities) per-insert duplicate/lookup scans
        self._entity_keys: Dict[str, Dict[Tuple[object, ...], Entity]] = {}
        self._assoc_pairs: Dict[str, set] = {}
        self._assoc_ends: Dict[str, Tuple[set, set]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_entity(self, set_name: str, entity: Entity) -> Entity:
        if set_name not in self._entities:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            self._entities[set_name] = []
            self._entity_keys[set_name] = {}
        entity_set = self.schema.entity_set(set_name)
        if entity.concrete_type not in self.schema.descendants_or_self(entity_set.root_type):
            raise SchemaError(
                f"type {entity.concrete_type!r} does not belong to set {set_name!r}"
            )
        if self.schema.entity_type(entity.concrete_type).abstract:
            raise SchemaError(
                f"cannot instantiate abstract type {entity.concrete_type!r}"
            )
        expected = set(self.schema.attribute_names_of(entity.concrete_type))
        provided = {name for name, _ in entity.values}
        if expected != provided:
            raise SchemaError(
                f"entity of {entity.concrete_type!r} must assign exactly {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for name, value in entity.values:
            attribute = self.schema.attribute_of(entity.concrete_type, name)
            if value is None:
                if not attribute.nullable:
                    raise SchemaError(
                        f"attribute {name!r} of {entity.concrete_type!r} is not nullable"
                    )
            elif not attribute.domain.contains(value):
                raise SchemaError(
                    f"value {value!r} outside domain of {entity.concrete_type}.{name}"
                )
        key = self.schema.key_of(entity.concrete_type)
        values = entity.value_map
        key_value = tuple(values[k] for k in key)
        keyed = self._entity_keys[set_name]
        if key_value in keyed:
            raise SchemaError(
                f"duplicate key {key_value!r} in entity set {set_name!r}"
            )
        self._entities[set_name].append(entity)
        keyed[key_value] = entity
        return entity

    def add_association(self, assoc_name: str, key1: Tuple[object, ...], key2: Tuple[object, ...]) -> None:
        if assoc_name not in self._associations:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            self._associations[assoc_name] = []
            self._assoc_pairs[assoc_name] = set()
            self._assoc_ends[assoc_name] = (set(), set())
        association = self.schema.association(assoc_name)
        end1_entity = self._find_by_key(association.entity_set1, key1)
        end2_entity = self._find_by_key(association.entity_set2, key2)
        if end1_entity is None or end2_entity is None:
            raise SchemaError(
                f"association {assoc_name!r} references missing entities {key1!r}/{key2!r}"
            )
        for end, entity in ((association.end1, end1_entity), (association.end2, end2_entity)):
            if end.entity_type not in self.schema.ancestors_or_self(entity.concrete_type):
                raise SchemaError(
                    f"entity {entity} cannot participate as {end.role_name!r} "
                    f"in association {assoc_name!r}"
                )
        pair = tuple(key1) + tuple(key2)
        if pair in self._assoc_pairs[assoc_name]:
            raise SchemaError(f"duplicate association tuple {pair!r} in {assoc_name!r}")
        self._check_multiplicity(association, key1, key2)
        self._associations[assoc_name].append(pair)
        self._assoc_pairs[assoc_name].add(pair)
        end1_keys, end2_keys = self._assoc_ends[assoc_name]
        end1_keys.add(tuple(key1))
        end2_keys.add(tuple(key2))

    def _check_multiplicity(self, association, key1, key2) -> None:
        key1, key2 = tuple(key1), tuple(key2)
        end1_keys, end2_keys = self._assoc_ends.get(
            association.name, (frozenset(), frozenset())
        )
        if association.end2.multiplicity.at_most_one():
            if key1 in end1_keys:
                raise SchemaError(
                    f"multiplicity {association.end2.multiplicity} violated on end "
                    f"{association.end2.role_name!r} of {association.name!r}"
                )
        if association.end1.multiplicity.at_most_one():
            if key2 in end2_keys:
                raise SchemaError(
                    f"multiplicity {association.end1.multiplicity} violated on end "
                    f"{association.end1.role_name!r} of {association.name!r}"
                )

    def _find_by_key(self, set_name: str, key_value: Tuple[object, ...]) -> Optional[Entity]:
        return self._entity_keys.get(set_name, {}).get(tuple(key_value))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def entities(self, set_name: str) -> Tuple[Entity, ...]:
        if set_name not in self._entities:
            if not self.schema.has_entity_set(set_name):
                raise SchemaError(f"unknown entity set {set_name!r}")
            return ()
        return tuple(self._entities[set_name])

    def associations(self, assoc_name: str) -> Tuple[Tuple[object, ...], ...]:
        if assoc_name not in self._associations:
            if not self.schema.has_association(assoc_name):
                raise SchemaError(f"unknown association {assoc_name!r}")
            return ()
        return tuple(self._associations[assoc_name])

    def entity_count(self) -> int:
        return sum(len(v) for v in self._entities.values())

    # ------------------------------------------------------------------
    # Comparison / embedding
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, FrozenSet]:
        """A canonical, comparison-friendly rendering of the state."""
        result: Dict[str, FrozenSet] = {}
        for set_name, entities in self._entities.items():
            if entities:
                result[f"set:{set_name}"] = frozenset(entities)
        for assoc_name, pairs in self._associations.items():
            if pairs:
                result[f"assoc:{assoc_name}"] = frozenset(pairs)
        return result

    def equals(self, other: "ClientState") -> bool:
        return self.snapshot() == other.snapshot()

    def embed_into(self, schema: ClientSchema) -> "ClientState":
        """The paper's ``f(c)``: the same state read under an evolved schema.

        Shared components keep their contents; components new in *schema*
        are empty.  Attributes new in *schema* (AddProperty) are padded
        with NULL when nullable; the embedding is undefined — and raises —
        when they are not.  Components of ``self`` missing from *schema*
        must be empty, otherwise the embedding is undefined.
        """
        result = ClientState(schema)
        for set_name, entities in self._entities.items():
            if not schema.has_entity_set(set_name):
                if entities:
                    raise SchemaError(
                        f"cannot embed: entity set {set_name!r} dropped but non-empty"
                    )
                continue
            for entity in entities:
                expected = schema.attribute_names_of(entity.concrete_type)
                provided = {name for name, _ in entity.values}
                gained = [
                    name for name in expected
                    if name not in provided
                    and schema.attribute_of(entity.concrete_type, name).nullable
                ]
                if gained:
                    entity = Entity(
                        entity.concrete_type,
                        tuple(sorted(
                            entity.values + tuple((n, None) for n in gained)
                        )),
                    )
                result.add_entity(set_name, entity)
        for assoc_name, pairs in self._associations.items():
            if not schema.has_association(assoc_name):
                if pairs:
                    raise SchemaError(
                        f"cannot embed: association {assoc_name!r} dropped but non-empty"
                    )
                continue
            association = schema.association(assoc_name)
            key1_len = len(schema.key_of(association.end1.entity_type))
            for pair in pairs:
                result.add_association(assoc_name, pair[:key1_len], pair[key1_len:])
        return result

    def __str__(self) -> str:
        lines = ["ClientState:"]
        for set_name, entities in self._entities.items():
            lines.append(f"  {set_name}: {[str(e) for e in entities]}")
        for assoc_name, pairs in self._associations.items():
            lines.append(f"  {assoc_name}: {pairs}")
        return "\n".join(lines)
