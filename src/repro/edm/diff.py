"""Model diff: abstract edits between two client schemas.

Section 1.2: "a developer can simply edit the model and then invoke a tool
that generates a sequence of SMOs from a diff of the old and new models.
For example, the tool can generate drop-operations of all model elements
that were deleted, and then generate add-operations for elements that were
added."  This module computes the abstract edits; the MoDEF layer
(:mod:`repro.modef`) turns them into concrete SMOs by inferring the
surrounding mapping style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.edm.association import AssociationSet
from repro.edm.schema import ClientSchema
from repro.edm.types import Attribute
from repro.errors import SchemaError


@dataclass(frozen=True)
class AddedEntityType:
    name: str
    parent: str
    attributes: Tuple[Attribute, ...]


@dataclass(frozen=True)
class DroppedEntityType:
    name: str


@dataclass(frozen=True)
class AddedAssociation:
    association: AssociationSet


@dataclass(frozen=True)
class DroppedAssociation:
    name: str


@dataclass(frozen=True)
class AddedAttribute:
    entity_type: str
    attribute: Attribute


Edit = object


def diff_client_schemas(old: ClientSchema, new: ClientSchema) -> List[Edit]:
    """Ordered edits turning *old* into *new*: drops first, then adds.

    Drops are emitted leaf-first and adds parent-first so that each edit is
    applicable when reached.  Renames are not detected (a rename diffs as
    drop + add, as in the paper's sketch).
    """
    edits: List[Edit] = []

    old_types = {t.name for t in old.entity_types}
    new_types = {t.name for t in new.entity_types}
    old_assocs = {a.name for a in old.associations}
    new_assocs = {a.name for a in new.associations}

    for name in sorted(old_assocs - new_assocs):
        edits.append(DroppedAssociation(name))

    dropped = old_types - new_types
    # leaf-first: sort by descending depth
    for name in sorted(
        dropped, key=lambda n: len(old.ancestors(n)), reverse=True
    ):
        edits.append(DroppedEntityType(name))

    added = new_types - old_types
    for name in sorted(added, key=lambda n: len(new.ancestors(n))):
        entity_type = new.entity_type(name)
        if entity_type.parent is None:
            raise SchemaError(
                f"diff cannot express a new hierarchy root ({name!r}); create "
                "the root and its entity set directly"
            )
        edits.append(
            AddedEntityType(name, entity_type.parent, entity_type.attributes)
        )

    for name in sorted(old_types & new_types):
        old_own = {a.name: a for a in old.entity_type(name).attributes}
        new_own = {a.name: a for a in new.entity_type(name).attributes}
        for attr_name in sorted(set(new_own) - set(old_own)):
            edits.append(AddedAttribute(name, new_own[attr_name]))
        removed_attrs = set(old_own) - set(new_own)
        if removed_attrs:
            raise SchemaError(
                f"diff cannot express attribute removal ({name}.{sorted(removed_attrs)})"
            )

    for name in sorted(new_assocs - old_assocs):
        edits.append(AddedAssociation(new.association(name)))

    return edits
