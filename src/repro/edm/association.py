"""Association types and sets between entity types (EDM subset).

An association connects entities of two entity types.  Its instances are
pairs of keys, as in Section 2.1: "association sets are sets of tuples
(α1, α2) corresponding to key attributes of the entities participating in
the association".  Multiplicities are 1, 0..1 or * per end, which covers
the 1:1, 1:n and m:n cardinalities of Section 2.

Attribute names on an association scan are role-qualified, matching the
paper's ``π_{Customer.Id AS Cid, Employee.Id AS Eid}(Supports)`` notation:
the attribute for key ``Id`` of the end with role ``Customer`` is
``"Customer.Id"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.errors import SchemaError


class Multiplicity(Enum):
    """Cardinality of one association end."""

    ONE = "1"
    ZERO_OR_ONE = "0..1"
    MANY = "*"

    def at_most_one(self) -> bool:
        return self is not Multiplicity.MANY

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AssociationEnd:
    """One end of an association: the participating type, role, multiplicity.

    ``role`` defaults to the entity type name; it must be given explicitly
    for self-associations so the two ends stay distinguishable.
    """

    entity_type: str
    multiplicity: Multiplicity
    role: Optional[str] = None

    @property
    def role_name(self) -> str:
        return self.role if self.role is not None else self.entity_type

    def __str__(self) -> str:
        return f"{self.role_name}:{self.entity_type}[{self.multiplicity}]"


@dataclass(frozen=True)
class AssociationSet:
    """A named set of associations between entities of two entity sets.

    We fold association *type* and *set* into one object: the paper assumes
    every association set is mentioned in a single mapping fragment and never
    needs two sets of the same association type.
    """

    name: str
    end1: AssociationEnd
    end2: AssociationEnd
    entity_set1: str = ""
    entity_set2: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("association set name must be non-empty")
        if self.end1.role_name == self.end2.role_name:
            raise SchemaError(
                f"association {self.name!r} has two ends with role "
                f"{self.end1.role_name!r}; give explicit distinct roles"
            )

    @property
    def ends(self) -> Tuple[AssociationEnd, AssociationEnd]:
        return (self.end1, self.end2)

    def end_for_role(self, role: str) -> AssociationEnd:
        for end in self.ends:
            if end.role_name == role:
                return end
        raise SchemaError(f"association {self.name!r} has no end with role {role!r}")

    def qualified_key_attrs(self, key1: Tuple[str, ...], key2: Tuple[str, ...]) -> Tuple[str, ...]:
        """Role-qualified attribute names of this association's tuples."""
        first = tuple(f"{self.end1.role_name}.{k}" for k in key1)
        second = tuple(f"{self.end2.role_name}.{k}" for k in key2)
        return first + second

    def __str__(self) -> str:
        return f"{self.name}({self.end1} -- {self.end2})"
