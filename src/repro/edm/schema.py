"""The client schema: a registry of entity types, entity sets and associations.

This owns all hierarchy navigation needed by the paper's algorithms:
ancestors and descendants (proper or not), the types strictly between ``E``
and ``P`` (the set ``p`` of Algorithms 1 and 2), children outside that set
(``ch_p``), and the full attribute set ``att(E)``.

The schema is mutable — SMOs evolve it in place — but every mutation
validates its inputs, and :meth:`clone` provides cheap snapshots so the
incremental compiler can roll back when validation fails (Section 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.edm.association import AssociationSet
from repro.edm.entity import EntitySet, EntityType
from repro.edm.types import Attribute
from repro.errors import SchemaError


class ClientSchema:
    """An EDM-subset client schema.

    Entity types form single-inheritance forests.  Each entity set is rooted
    at one type; an entity set contains entities of the root type and all of
    its (transitive) subtypes.
    """

    def __init__(self) -> None:
        self._types: Dict[str, EntityType] = {}
        self._children: Dict[str, List[str]] = {}
        self._sets: Dict[str, EntitySet] = {}
        self._associations: Dict[str, AssociationSet] = {}

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_entity_type(self, entity_type: EntityType) -> EntityType:
        if entity_type.name in self._types:
            raise SchemaError(f"entity type {entity_type.name!r} already exists")
        if entity_type.parent is not None:
            if entity_type.parent not in self._types:
                raise SchemaError(
                    f"parent {entity_type.parent!r} of {entity_type.name!r} does not exist"
                )
            inherited = {a.name for a in self.attributes_of(entity_type.parent)}
            clash = inherited & set(entity_type.own_attribute_names)
            if clash:
                raise SchemaError(
                    f"attributes {sorted(clash)} of {entity_type.name!r} shadow inherited ones"
                )
        self._types[entity_type.name] = entity_type
        self._children.setdefault(entity_type.name, [])
        if entity_type.parent is not None:
            self._children.setdefault(entity_type.parent, []).append(entity_type.name)
        return entity_type

    def add_entity_set(self, entity_set: EntitySet) -> EntitySet:
        if entity_set.name in self._sets:
            raise SchemaError(f"entity set {entity_set.name!r} already exists")
        if entity_set.root_type not in self._types:
            raise SchemaError(
                f"root type {entity_set.root_type!r} of set {entity_set.name!r} does not exist"
            )
        if self._types[entity_set.root_type].parent is not None:
            raise SchemaError(
                f"entity set {entity_set.name!r} must be rooted at a hierarchy root"
            )
        self._sets[entity_set.name] = entity_set
        return entity_set

    def add_association(self, association: AssociationSet) -> AssociationSet:
        if association.name in self._associations:
            raise SchemaError(f"association {association.name!r} already exists")
        for end, set_name in (
            (association.end1, association.entity_set1),
            (association.end2, association.entity_set2),
        ):
            if end.entity_type not in self._types:
                raise SchemaError(
                    f"association {association.name!r} references unknown type "
                    f"{end.entity_type!r}"
                )
            if set_name not in self._sets:
                raise SchemaError(
                    f"association {association.name!r} references unknown entity set "
                    f"{set_name!r}"
                )
            root = self._sets[set_name].root_type
            if root not in self.ancestors_or_self(end.entity_type):
                raise SchemaError(
                    f"type {end.entity_type!r} is not in the hierarchy of set {set_name!r}"
                )
        self._associations[association.name] = association
        return association

    def drop_entity_type(self, name: str) -> EntityType:
        """Remove a leaf entity type with no associations touching it."""
        entity_type = self.entity_type(name)
        if self._children.get(name):
            raise SchemaError(f"cannot drop {name!r}: it has subtypes {self._children[name]}")
        for association in self._associations.values():
            if name in (association.end1.entity_type, association.end2.entity_type):
                raise SchemaError(
                    f"cannot drop {name!r}: association {association.name!r} references it"
                )
        del self._types[name]
        del self._children[name]
        if entity_type.parent is not None:
            self._children[entity_type.parent].remove(name)
        for set_name, entity_set in list(self._sets.items()):
            if entity_set.root_type == name:
                del self._sets[set_name]
        return entity_type

    def drop_association(self, name: str) -> AssociationSet:
        if name not in self._associations:
            raise SchemaError(f"association {name!r} does not exist")
        return self._associations.pop(name)

    def drop_entity_set(self, name: str) -> EntitySet:
        """Remove an entity set no association references (delta inverses)."""
        if name not in self._sets:
            raise SchemaError(f"entity set {name!r} does not exist")
        for association in self._associations.values():
            if name in (association.entity_set1, association.entity_set2):
                raise SchemaError(
                    f"cannot drop set {name!r}: association "
                    f"{association.name!r} references it"
                )
        return self._sets.pop(name)

    def drop_attribute(self, type_name: str, attr_name: str) -> Attribute:
        """Remove a non-key attribute declared on ``type_name`` itself."""
        entity_type = self.entity_type(type_name)
        if attr_name in entity_type.key:
            raise SchemaError(f"cannot drop key attribute {attr_name!r} of {type_name!r}")
        remaining = tuple(a for a in entity_type.attributes if a.name != attr_name)
        if len(remaining) == len(entity_type.attributes):
            raise SchemaError(
                f"attribute {attr_name!r} is not declared on {type_name!r}"
            )
        removed = next(a for a in entity_type.attributes if a.name == attr_name)
        self._types[type_name] = EntityType(
            name=entity_type.name,
            parent=entity_type.parent,
            attributes=remaining,
            key=entity_type.key,
            abstract=entity_type.abstract,
        )
        return removed

    def add_attribute(self, type_name: str, attribute: Attribute) -> None:
        """Add an attribute to an existing entity type (the AddProperty SMO)."""
        entity_type = self.entity_type(type_name)
        taken = {a.name for a in self.attributes_of(type_name)}
        taken.update(
            a.name
            for descendant in self.descendants(type_name)
            for a in self._types[descendant].attributes
        )
        if attribute.name in taken:
            raise SchemaError(
                f"attribute {attribute.name!r} clashes on hierarchy of {type_name!r}"
            )
        self._types[type_name] = EntityType(
            name=entity_type.name,
            parent=entity_type.parent,
            attributes=entity_type.attributes + (attribute,),
            key=entity_type.key,
            abstract=entity_type.abstract,
        )

    def clone(self) -> "ClientSchema":
        """Return an independent snapshot (types are immutable, so shallow)."""
        other = ClientSchema()
        other._types = dict(self._types)
        other._children = {k: list(v) for k, v in self._children.items()}
        other._sets = dict(self._sets)
        other._associations = dict(self._associations)
        return other

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entity_type(self, name: str) -> EntityType:
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown entity type {name!r}") from None

    def has_entity_type(self, name: str) -> bool:
        return name in self._types

    def entity_set(self, name: str) -> EntitySet:
        try:
            return self._sets[name]
        except KeyError:
            raise SchemaError(f"unknown entity set {name!r}") from None

    def has_entity_set(self, name: str) -> bool:
        return name in self._sets

    def association(self, name: str) -> AssociationSet:
        try:
            return self._associations[name]
        except KeyError:
            raise SchemaError(f"unknown association {name!r}") from None

    def has_association(self, name: str) -> bool:
        return name in self._associations

    @property
    def entity_types(self) -> Tuple[EntityType, ...]:
        return tuple(self._types.values())

    @property
    def entity_sets(self) -> Tuple[EntitySet, ...]:
        return tuple(self._sets.values())

    @property
    def associations(self) -> Tuple[AssociationSet, ...]:
        return tuple(self._associations.values())

    # ------------------------------------------------------------------
    # Hierarchy navigation
    # ------------------------------------------------------------------
    def parent_of(self, name: str) -> Optional[str]:
        return self.entity_type(name).parent

    def children_of(self, name: str) -> Tuple[str, ...]:
        self.entity_type(name)
        return tuple(self._children.get(name, ()))

    def root_of(self, name: str) -> str:
        current = self.entity_type(name)
        while current.parent is not None:
            current = self.entity_type(current.parent)
        return current.name

    def ancestors(self, name: str) -> Tuple[str, ...]:
        """Proper ancestors of *name*, nearest first."""
        result: List[str] = []
        parent = self.entity_type(name).parent
        while parent is not None:
            result.append(parent)
            parent = self.entity_type(parent).parent
        return tuple(result)

    def ancestors_or_self(self, name: str) -> Tuple[str, ...]:
        return (name,) + self.ancestors(name)

    def descendants(self, name: str) -> Tuple[str, ...]:
        """Proper descendants of *name* in breadth-first order."""
        result: List[str] = []
        frontier = list(self.children_of(name))
        while frontier:
            current = frontier.pop(0)
            result.append(current)
            frontier.extend(self._children.get(current, ()))
        return tuple(result)

    def descendants_or_self(self, name: str) -> Tuple[str, ...]:
        return (name,) + self.descendants(name)

    def is_ancestor_or_self(self, ancestor: str, descendant: str) -> bool:
        return ancestor in self.ancestors_or_self(descendant)

    def types_strictly_between(self, descendant: str, ancestor: Optional[str]) -> Tuple[str, ...]:
        """The set ``p`` of Algorithms 1 and 2: proper ancestors of
        *descendant* that are proper descendants of *ancestor*.

        ``ancestor=None`` plays the role of NIL: every proper ancestor of
        *descendant* qualifies (the paper treats every root as a descendant
        of NIL).
        """
        result: List[str] = []
        for candidate in self.ancestors(descendant):
            if ancestor is not None and candidate == ancestor:
                break
            result.append(candidate)
        else:
            if ancestor is not None:
                raise SchemaError(
                    f"{ancestor!r} is not an ancestor of {descendant!r}"
                )
        return tuple(result)

    def concrete_types_of_set(self, set_name: str) -> Tuple[str, ...]:
        """Non-abstract types whose instances may live in *set_name*."""
        root = self.entity_set(set_name).root_type
        return tuple(
            t for t in self.descendants_or_self(root) if not self.entity_type(t).abstract
        )

    def set_of_type(self, type_name: str) -> EntitySet:
        """The (unique) entity set whose hierarchy contains *type_name*."""
        root = self.root_of(type_name)
        for entity_set in self._sets.values():
            if entity_set.root_type == root:
                return entity_set
        raise SchemaError(f"no entity set contains type {type_name!r}")

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def attributes_of(self, type_name: str) -> Tuple[Attribute, ...]:
        """``att(E)``: inherited attributes first, then own attributes."""
        chain = list(reversed(self.ancestors_or_self(type_name)))
        result: List[Attribute] = []
        for link in chain:
            result.extend(self._types[link].attributes)
        return tuple(result)

    def attribute_names_of(self, type_name: str) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes_of(type_name))

    def attribute_of(self, type_name: str, attr_name: str) -> Attribute:
        for attribute in self.attributes_of(type_name):
            if attribute.name == attr_name:
                return attribute
        raise SchemaError(f"type {type_name!r} has no attribute {attr_name!r}")

    def key_of(self, type_name: str) -> Tuple[str, ...]:
        return self.entity_type(self.root_of(type_name)).key

    def declaring_type(self, type_name: str, attr_name: str) -> str:
        """The type in the ancestor chain that declares *attr_name*."""
        for link in self.ancestors_or_self(type_name):
            if attr_name in self._types[link].own_attribute_names:
                return link
        raise SchemaError(f"type {type_name!r} has no attribute {attr_name!r}")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Run global well-formedness checks (sets rooted correctly, etc.)."""
        for entity_set in self._sets.values():
            root = self.entity_type(entity_set.root_type)
            if root.parent is not None:
                raise SchemaError(
                    f"entity set {entity_set.name!r} rooted at non-root {root.name!r}"
                )
        for association in self._associations.values():
            self.association(association.name)

    def __str__(self) -> str:
        lines = ["ClientSchema:"]
        lines.extend(f"  type {t}" for t in self._types.values())
        lines.extend(f"  set {s}" for s in self._sets.values())
        lines.extend(f"  assoc {a}" for a in self._associations.values())
        return "\n".join(lines)
