"""Entity types organised in single-inheritance hierarchies (EDM subset).

An entity type declares its *own* (non-inherited) attributes; the full
attribute set ``att(E)`` of the paper is own attributes plus all inherited
ones.  Keys are declared on hierarchy roots and inherited unchanged, as in
EDM.  Hierarchy navigation lives on :class:`repro.edm.schema.ClientSchema`,
which owns the type registry; an :class:`EntityType` only knows its parent's
name so that types remain simple value-like objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.edm.types import Attribute
from repro.errors import SchemaError


@dataclass(frozen=True)
class EntityType:
    """An entity type: name, optional parent, own attributes, optional key.

    ``key`` must be set exactly on hierarchy roots (types with no parent)
    and must name a subset of the root's own attributes.
    """

    name: str
    parent: Optional[str] = None
    attributes: Tuple[Attribute, ...] = ()
    key: Tuple[str, ...] = ()
    abstract: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity type name must be non-empty")
        seen = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} on entity type {self.name!r}"
                )
            seen.add(attribute.name)
        if self.parent is None:
            if not self.key:
                raise SchemaError(f"root entity type {self.name!r} must declare a key")
            missing = [k for k in self.key if k not in seen]
            if missing:
                raise SchemaError(
                    f"key attributes {missing} of {self.name!r} are not own attributes"
                )
            for key_attr in self.key:
                attribute = next(a for a in self.attributes if a.name == key_attr)
                if attribute.nullable:
                    raise SchemaError(
                        f"key attribute {key_attr!r} of {self.name!r} must not be nullable"
                    )
        elif self.key:
            raise SchemaError(
                f"derived entity type {self.name!r} must not redeclare a key"
            )

    @property
    def own_attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def own_attribute(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"entity type {self.name!r} has no own attribute {name!r}")

    def __str__(self) -> str:
        parent = f"({self.parent})" if self.parent else ""
        attrs = ", ".join(str(a) for a in self.attributes)
        return f"{self.name}{parent}[{attrs}]"


@dataclass(frozen=True)
class EntitySet:
    """A persistent collection of entities of a root type or its subtypes."""

    name: str
    root_type: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity set name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}<{self.root_type}>"
