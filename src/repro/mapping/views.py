"""Compiled views: query views, association views, update views.

A compiled mapping (Section 2.2) consists of

* a **query view** ``(Q_E | τ_E)`` per entity type — ``Q_E`` ranges over
  store tables and ``τ_E`` constructs entities of E or derived types;
* a query view per association set;
* an **update view** ``(Q_T | τ_T)`` per mapped store table — ``Q_T``
  ranges over entity/association sets and ``τ_T`` builds rows of T.

:class:`CompiledViews` is the mutable container both compilers produce and
the incremental compiler consumes and adapts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.algebra.constructors import (
    AssociationCtor,
    Constructor,
    RowCtor,
)
from repro.algebra.entity_sql import view_to_sql
from repro.algebra.queries import Query
from repro.errors import MappingError


@dataclass(frozen=True)
class QueryView:
    """``(Q_E | τ_E)`` for an entity type."""

    entity_type: str
    query: Query
    constructor: Constructor

    def to_sql(self) -> str:
        return view_to_sql(f"QueryView[{self.entity_type}]", self.query, self.constructor)


@dataclass(frozen=True)
class AssociationView:
    """``(Q_A | τ_A)`` for an association set."""

    assoc_name: str
    query: Query
    constructor: AssociationCtor

    def to_sql(self) -> str:
        return view_to_sql(f"QueryView[{self.assoc_name}]", self.query, self.constructor)


@dataclass(frozen=True)
class UpdateView:
    """``(Q_T | τ_T)`` for a store table."""

    table_name: str
    query: Query
    constructor: RowCtor

    def to_sql(self) -> str:
        return view_to_sql(f"UpdateView[{self.table_name}]", self.query, self.constructor)


class CompiledViews:
    """All views compiled from one mapping.

    Keys: query views by entity-type name, association views by association
    name, update views by table name.
    """

    def __init__(
        self,
        query_views: Iterable[QueryView] = (),
        association_views: Iterable[AssociationView] = (),
        update_views: Iterable[UpdateView] = (),
    ) -> None:
        self.query_views: Dict[str, QueryView] = {}
        self.association_views: Dict[str, AssociationView] = {}
        self.update_views: Dict[str, UpdateView] = {}
        for view in query_views:
            self.set_query_view(view)
        for view in association_views:
            self.set_association_view(view)
        for view in update_views:
            self.set_update_view(view)

    # ------------------------------------------------------------------
    def set_query_view(self, view: QueryView) -> None:
        self.query_views[view.entity_type] = view

    def set_association_view(self, view: AssociationView) -> None:
        self.association_views[view.assoc_name] = view

    def set_update_view(self, view: UpdateView) -> None:
        self.update_views[view.table_name] = view

    def query_view(self, entity_type: str) -> QueryView:
        try:
            return self.query_views[entity_type]
        except KeyError:
            raise MappingError(f"no query view for entity type {entity_type!r}") from None

    def association_view(self, assoc_name: str) -> AssociationView:
        try:
            return self.association_views[assoc_name]
        except KeyError:
            raise MappingError(f"no query view for association {assoc_name!r}") from None

    def update_view(self, table_name: str) -> UpdateView:
        try:
            return self.update_views[table_name]
        except KeyError:
            raise MappingError(f"no update view for table {table_name!r}") from None

    def has_update_view(self, table_name: str) -> bool:
        return table_name in self.update_views

    def drop_query_view(self, entity_type: str) -> None:
        self.query_views.pop(entity_type, None)

    def drop_association_view(self, assoc_name: str) -> None:
        self.association_views.pop(assoc_name, None)

    def drop_update_view(self, table_name: str) -> None:
        self.update_views.pop(table_name, None)

    def clone(self) -> "CompiledViews":
        """Snapshot for rollback; views themselves are immutable."""
        return CompiledViews(
            self.query_views.values(),
            self.association_views.values(),
            self.update_views.values(),
        )

    def to_sql(self) -> str:
        """All views rendered as Entity-SQL-style text (the paper's C# file)."""
        blocks = [v.to_sql() for v in self.query_views.values()]
        blocks += [v.to_sql() for v in self.association_views.values()]
        blocks += [v.to_sql() for v in self.update_views.values()]
        return "\n\n".join(blocks)

    def __str__(self) -> str:
        return (
            f"CompiledViews(query={sorted(self.query_views)}, "
            f"assoc={sorted(self.association_views)}, "
            f"update={sorted(self.update_views)})"
        )
