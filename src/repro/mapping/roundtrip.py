"""The empirical roundtrip oracle.

A mapping roundtrips iff ``M ∘ M⁻¹ = I_C`` (Section 2.2); for compiled
views this means ``Q(V(c)) = c`` for every client state c.  The compilers
verify this *symbolically*; this module verifies it on *concrete* states,
which gives tests and benchmarks an independent ground truth:

* :func:`apply_update_views` — run V: client state → store state;
* :func:`apply_query_views` — run Q: store state → client state;
* :func:`check_roundtrip` — the composed identity check, with diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.algebra.evaluate import ClientContext, StoreContext, evaluate_query
from repro.edm.instances import ClientState
from repro.edm.schema import ClientSchema
from repro.errors import ReproError
from repro.mapping.views import CompiledViews
from repro.relational.constraints import ConstraintViolation, check_all
from repro.relational.instances import StoreState
from repro.relational.schema import StoreSchema


def apply_update_views(
    views: CompiledViews, client_state: ClientState, store_schema: StoreSchema
) -> StoreState:
    """Translate a client state to the store through the update views."""
    store_state = StoreState(store_schema)
    context = ClientContext(client_state)
    for update_view in views.update_views.values():
        for row in evaluate_query(update_view.query, context):
            store_state.add_row(
                update_view.table_name, update_view.constructor.construct(row)
            )
    return store_state


def apply_query_views(
    views: CompiledViews, store_state: StoreState, client_schema: ClientSchema
) -> ClientState:
    """Reconstruct a client state from the store through the query views.

    Each entity set is populated from the query view of its root type
    (which constructs entities of every concrete type in the hierarchy);
    association sets from their association views.
    """
    client_state = ClientState(client_schema)
    context = StoreContext(store_state)
    for entity_set in client_schema.entity_sets:
        view = views.query_views.get(entity_set.root_type)
        if view is None:
            continue
        for row in evaluate_query(view.query, context):
            client_state.add_entity(entity_set.name, view.constructor.construct(row))
    for association in client_schema.associations:
        view = views.association_views.get(association.name)
        if view is None:
            continue
        key1 = client_schema.key_of(association.end1.entity_type)
        key2 = client_schema.key_of(association.end2.entity_type)
        role1 = association.end1.role_name
        role2 = association.end2.role_name
        for row in evaluate_query(view.query, context):
            values = view.constructor.construct_map(row)
            client_state.add_association(
                association.name,
                tuple(values[f"{role1}.{k}"] for k in key1),
                tuple(values[f"{role2}.{k}"] for k in key2),
            )
    return client_state


@dataclass
class RoundtripReport:
    """Outcome of one empirical roundtrip check."""

    ok: bool
    error: Optional[str] = None
    store_violations: List[ConstraintViolation] = field(default_factory=list)
    store_state: Optional[StoreState] = None
    reconstructed: Optional[ClientState] = None

    def __str__(self) -> str:
        if self.ok:
            return "roundtrip OK"
        parts = [f"roundtrip FAILED: {self.error}"]
        parts.extend(f"  {v}" for v in self.store_violations)
        return "\n".join(parts)


def check_roundtrip(
    views: CompiledViews,
    client_state: ClientState,
    store_schema: StoreSchema,
    require_consistent_store: bool = True,
) -> RoundtripReport:
    """Check ``Q(V(c)) = c`` for one concrete client state.

    Also checks that the produced store state satisfies its key and
    foreign-key constraints: a mapping whose update views violate store
    constraints does not roundtrip (Section 3.1.4).
    """
    schema = client_state.schema
    try:
        store_state = apply_update_views(views, client_state, store_schema)
    except ReproError as exc:
        return RoundtripReport(ok=False, error=f"update views failed: {exc}")

    violations = check_all(store_state) if require_consistent_store else []
    if violations:
        return RoundtripReport(
            ok=False,
            error="update views produced an inconsistent store state",
            store_violations=violations,
            store_state=store_state,
        )

    try:
        reconstructed = apply_query_views(views, store_state, schema)
    except ReproError as exc:
        return RoundtripReport(
            ok=False, error=f"query views failed: {exc}", store_state=store_state
        )

    if not reconstructed.equals(client_state):
        return RoundtripReport(
            ok=False,
            error=_diff_states(client_state, reconstructed),
            store_state=store_state,
            reconstructed=reconstructed,
        )
    return RoundtripReport(ok=True, store_state=store_state, reconstructed=reconstructed)


def _diff_states(original: ClientState, reconstructed: ClientState) -> str:
    left, right = original.snapshot(), reconstructed.snapshot()
    lines = ["reconstructed state differs from original:"]
    for key in sorted(set(left) | set(right)):
        before = left.get(key, frozenset())
        after = right.get(key, frozenset())
        if before != after:
            lost = before - after
            gained = after - before
            if lost:
                lines.append(f"  {key}: lost {sorted(map(str, lost))}")
            if gained:
                lines.append(f"  {key}: gained {sorted(map(str, gained))}")
    return "\n".join(lines)
