"""Mapping fragments and mappings (Section 2.1).

A mapping fragment is a constraint ``π_α(σ_ψ(E)) = π_β(σ_χ(R))`` between a
project-select query over one client entity/association set and a
project-select query over one store table.  We represent the attribute
correspondence as the explicit 1-1 function ``f : α → β`` the SMOs use,
so ``α`` and ``β`` are the two projections of ``attribute_map``.

Both sides are compared on the *client* attribute names: the canonical
store query renames ``f(a)`` back to ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algebra.conditions import Condition, referenced_attrs, referenced_types
from repro.algebra.queries import (
    AssociationScan,
    Col,
    ProjItem,
    Query,
    SetScan,
    TableScan,
    project_select,
)
from repro.edm.schema import ClientSchema
from repro.errors import MappingError
from repro.relational.schema import StoreSchema


@dataclass(frozen=True)
class MappingFragment:
    """One fragment ``π_α(σ_ψ(source)) = π_{f(α)}(σ_χ(table))``.

    ``client_source`` is an entity-set name (``is_association=False``) or an
    association-set name (``is_association=True``).  ``attribute_map`` lists
    ``(client_attr, store_column)`` pairs; its order fixes α and β.
    """

    client_source: str
    is_association: bool
    client_condition: Condition
    store_table: str
    store_condition: Condition
    attribute_map: Tuple[Tuple[str, str], ...]

    @property
    def alpha(self) -> Tuple[str, ...]:
        return tuple(a for a, _ in self.attribute_map)

    @property
    def beta(self) -> Tuple[str, ...]:
        return tuple(b for _, b in self.attribute_map)

    def maps_attr(self, client_attr: str) -> Optional[str]:
        for attr, column in self.attribute_map:
            if attr == client_attr:
                return column
        return None

    def maps_column(self, store_column: str) -> Optional[str]:
        for attr, column in self.attribute_map:
            if column == store_column:
                return attr
        return None

    def client_query(self) -> Query:
        """``π_α(σ_ψ(source))`` as a query tree."""
        scan: Query = (
            AssociationScan(self.client_source)
            if self.is_association
            else SetScan(self.client_source)
        )
        items = tuple(ProjItem(a, Col(a)) for a in self.alpha)
        return project_select(scan, self.client_condition, items)

    def store_query(self) -> Query:
        """``π_{f(α) AS α}(σ_χ(table))``: store side on client attr names."""
        items = tuple(ProjItem(a, Col(b)) for a, b in self.attribute_map)
        return project_select(TableScan(self.store_table), self.store_condition, items)

    def with_client_condition(self, condition: Condition) -> "MappingFragment":
        return replace(self, client_condition=condition)

    def __str__(self) -> str:
        alpha = ", ".join(self.alpha)
        beta = ", ".join(self.beta)
        psi = str(self.client_condition)
        chi = str(self.store_condition)
        left = f"π[{alpha}](σ[{psi}]({self.client_source}))"
        right = f"π[{beta}](σ[{chi}]({self.store_table}))"
        return f"{left} = {right}"


class Mapping:
    """A client schema, a store schema, and a set of mapping fragments."""

    def __init__(
        self,
        client_schema: ClientSchema,
        store_schema: StoreSchema,
        fragments: Iterable[MappingFragment] = (),
    ) -> None:
        self.client_schema = client_schema
        self.store_schema = store_schema
        self.fragments: List[MappingFragment] = list(fragments)
        self._index_stale = True
        self._by_table: Dict[str, List[MappingFragment]] = {}
        self._by_set: Dict[str, List[MappingFragment]] = {}
        self._by_assoc: Dict[str, MappingFragment] = {}

    def _index(self) -> None:
        """(Re)build the per-table/per-set lookup index lazily."""
        if not self._index_stale:
            return
        self._by_table = {}
        self._by_set = {}
        self._by_assoc = {}
        for fragment in self.fragments:
            self._by_table.setdefault(fragment.store_table, []).append(fragment)
            if fragment.is_association:
                self._by_assoc.setdefault(fragment.client_source, fragment)
            else:
                self._by_set.setdefault(fragment.client_source, []).append(fragment)
        self._index_stale = False

    # ------------------------------------------------------------------
    # Mutation (used by SMO adaptation)
    # ------------------------------------------------------------------
    def add_fragment(self, fragment: MappingFragment) -> MappingFragment:
        self.fragments.append(fragment)
        self._index_stale = True
        return fragment

    def replace_fragments(self, fragments: Sequence[MappingFragment]) -> None:
        self.fragments = list(fragments)
        self._index_stale = True

    def clone(self) -> "Mapping":
        return Mapping(
            self.client_schema.clone(), self.store_schema.clone(), list(self.fragments)
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def fragments_for_table(self, table_name: str) -> Tuple[MappingFragment, ...]:
        self._index()
        return tuple(self._by_table.get(table_name, ()))

    def fragments_for_set(self, set_name: str) -> Tuple[MappingFragment, ...]:
        self._index()
        return tuple(self._by_set.get(set_name, ()))

    def fragment_for_association(self, assoc_name: str) -> Optional[MappingFragment]:
        self._index()
        return self._by_assoc.get(assoc_name)

    def entity_fragments(self) -> Tuple[MappingFragment, ...]:
        return tuple(f for f in self.fragments if not f.is_association)

    def association_fragments(self) -> Tuple[MappingFragment, ...]:
        return tuple(f for f in self.fragments if f.is_association)

    def mapped_tables(self) -> Tuple[str, ...]:
        self._index()
        return tuple(self._by_table)

    def table_is_mapped(self, table_name: str) -> bool:
        self._index()
        return table_name in self._by_table

    def column_is_mapped(self, table_name: str, column: str) -> bool:
        """True if some fragment maps data into *column* of *table_name*.

        Used by check 1 of Section 3.2 (the f(PK2) columns must be fresh)
        and by the store-condition scan: a column mentioned in a store
        condition also counts as used.
        """
        for fragment in self.fragments_for_table(table_name):
            if fragment.maps_column(column) is not None:
                return True
            if column in referenced_attrs(fragment.store_condition):
                return True
        return False

    # ------------------------------------------------------------------
    # Well-formedness (the static checks of Section 2.1 / step 1 of [13])
    # ------------------------------------------------------------------
    def check_well_formed(self) -> None:
        """Raise MappingError if any fragment is structurally invalid."""
        for fragment in self.fragments:
            self._check_fragment(fragment)
        seen_assocs = set()
        for fragment in self.association_fragments():
            if fragment.client_source in seen_assocs:
                raise MappingError(
                    f"association {fragment.client_source!r} is mentioned in more "
                    "than one mapping fragment"
                )
            seen_assocs.add(fragment.client_source)

    def _check_fragment(self, fragment: MappingFragment) -> None:
        client_schema, store_schema = self.client_schema, self.store_schema
        if not store_schema.has_table(fragment.store_table):
            raise MappingError(f"fragment targets unknown table {fragment.store_table!r}")
        table = store_schema.table(fragment.store_table)

        alpha, beta = fragment.alpha, fragment.beta
        if len(set(alpha)) != len(alpha) or len(set(beta)) != len(beta):
            raise MappingError(f"attribute map of fragment {fragment} is not 1-1")
        for column in beta:
            if not table.has_column(column):
                raise MappingError(
                    f"fragment maps to missing column {fragment.store_table}.{column}"
                )
        for column in referenced_attrs(fragment.store_condition):
            if not table.has_column(column):
                raise MappingError(
                    f"store condition references missing column "
                    f"{fragment.store_table}.{column}"
                )
        if not set(table.primary_key) <= set(beta):
            raise MappingError(
                f"fragment on {fragment.store_table!r} must project the table key "
                f"{table.primary_key}"
            )

        if fragment.is_association:
            self._check_association_fragment(fragment)
            return

        if not client_schema.has_entity_set(fragment.client_source):
            raise MappingError(f"fragment over unknown entity set {fragment.client_source!r}")
        entity_set = client_schema.entity_set(fragment.client_source)
        hierarchy = set(client_schema.descendants_or_self(entity_set.root_type))
        for type_name in referenced_types(fragment.client_condition):
            if type_name not in hierarchy:
                raise MappingError(
                    f"condition of fragment over {fragment.client_source!r} references "
                    f"type {type_name!r} outside the set's hierarchy"
                )
        key = client_schema.key_of(entity_set.root_type)
        if not set(key) <= set(alpha):
            raise MappingError(
                f"fragment over {fragment.client_source!r} must project the key {key}"
            )
        # Domain compatibility: dom(A) ⊆ dom(f(A)) for the widest type that
        # declares A in this hierarchy.
        for attr, column in fragment.attribute_map:
            attribute = self._find_attribute(hierarchy, attr)
            if attribute is None:
                raise MappingError(
                    f"fragment projects unknown attribute {attr!r} of "
                    f"{fragment.client_source!r}"
                )
            if not attribute.domain.is_subdomain_of(table.column(column).domain):
                raise MappingError(
                    f"domain of {attr!r} not contained in domain of "
                    f"{fragment.store_table}.{column}"
                )

    def _check_association_fragment(self, fragment: MappingFragment) -> None:
        client_schema = self.client_schema
        if not client_schema.has_association(fragment.client_source):
            raise MappingError(
                f"fragment over unknown association {fragment.client_source!r}"
            )
        association = client_schema.association(fragment.client_source)
        key1 = client_schema.key_of(association.end1.entity_type)
        key2 = client_schema.key_of(association.end2.entity_type)
        expected = set(association.qualified_key_attrs(key1, key2))
        if set(fragment.alpha) != expected:
            raise MappingError(
                f"association fragment over {fragment.client_source!r} must project "
                f"exactly {sorted(expected)}, got {sorted(fragment.alpha)}"
            )
        if referenced_types(fragment.client_condition):
            raise MappingError(
                "association fragment conditions cannot contain type atoms"
            )

    def _find_attribute(self, hierarchy, attr_name: str):
        for type_name in hierarchy:
            for attribute in self.client_schema.attributes_of(type_name):
                if attribute.name == attr_name:
                    return attribute
        return None

    def __str__(self) -> str:
        lines = ["Mapping:"]
        lines.extend(f"  {f}" for f in self.fragments)
        return "\n".join(lines)
