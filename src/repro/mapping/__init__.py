"""Mapping fragments, compiled views, semantics and the roundtrip oracle."""

from repro.mapping.equivalence import ViewComparison, compare_views, structural_sizes
from repro.mapping.fragments import Mapping, MappingFragment
from repro.mapping.roundtrip import (
    RoundtripReport,
    apply_query_views,
    apply_update_views,
    check_roundtrip,
)
from repro.mapping.semantics import fragment_satisfied, in_mapping, unsatisfied_fragments
from repro.mapping.views import AssociationView, CompiledViews, QueryView, UpdateView

__all__ = [
    "AssociationView",
    "CompiledViews",
    "Mapping",
    "MappingFragment",
    "QueryView",
    "RoundtripReport",
    "UpdateView",
    "ViewComparison",
    "apply_query_views",
    "apply_update_views",
    "check_roundtrip",
    "compare_views",
    "fragment_satisfied",
    "in_mapping",
    "structural_sizes",
    "unsatisfied_fragments",
]
