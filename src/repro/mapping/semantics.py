"""Instance-level mapping semantics.

Section 2.1: a set Σ of fragments defines the mapping
``M = {(c, s) | Q_C(c) = Q_S(s) for every fragment Q_C = Q_S ∈ Σ}``.
This module decides membership of a concrete pair (c, s) in M — the
ground-truth semantics against which the compilers are tested.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.algebra.evaluate import ClientContext, StoreContext, evaluate_query
from repro.edm.instances import ClientState
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.instances import StoreState


def _rows_as_set(rows: List[dict]) -> FrozenSet[Tuple[Tuple[str, object], ...]]:
    return frozenset(tuple(sorted(row.items())) for row in rows)


def fragment_satisfied(
    fragment: MappingFragment, client_state: ClientState, store_state: StoreState
) -> bool:
    """True if ``Q_C(c) = Q_S(s)`` for this fragment."""
    client_rows = evaluate_query(fragment.client_query(), ClientContext(client_state))
    store_rows = evaluate_query(fragment.store_query(), StoreContext(store_state))
    return _rows_as_set(client_rows) == _rows_as_set(store_rows)


def unsatisfied_fragments(
    mapping: Mapping, client_state: ClientState, store_state: StoreState
) -> List[MappingFragment]:
    """The fragments a pair (c, s) violates; empty means (c, s) ∈ M."""
    return [
        fragment
        for fragment in mapping.fragments
        if not fragment_satisfied(fragment, client_state, store_state)
    ]


def in_mapping(
    mapping: Mapping, client_state: ClientState, store_state: StoreState
) -> bool:
    """Decide ``(c, s) ∈ M`` by checking every fragment equation."""
    return not unsatisfied_fragments(mapping, client_state, store_state)
