"""Reconstructing a mapping as an SMO sequence (Section 6's open problem).

"Ideally, it should be accompanied by an algorithm that, given a schema
and mapping, generates a sequence of SMOs that produces the same result."

For the SMO-expressible subset of the mapping language — hierarchies
mapped TPT/TPC/TPH (or mixtures, one primary fragment per type) with
FK- or join-table-mapped associations — this module implements that
algorithm:

1. the *base* model keeps each hierarchy root with its primary fragment
   (SMOs add leaves, never roots);
2. every non-root type becomes an ``AddEntity``/``AddEntityTPH``,
   classified from its primary fragment's shape (same table as an
   ancestor + discriminator pin ⇒ TPH; α = att(E) ⇒ TPC; otherwise the
   general AddEntity with the anchor P derived from α);
3. every association becomes ``AddAssociationFK`` (its table also stores
   entity data) or ``AddAssociationJT`` (standalone table).

``reconstruct`` returns the base mapping plus the SMO sequence;
``verify_reconstruction`` replays it through the incremental compiler and
checks semantic equivalence with the target (compiled-view comparison on
canonical states).  The paper's order-sensitivity question ("Does it
matter which sequence it chooses?") is explored by the accompanying
benchmark, which permutes valid orders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.conditions import Comparison, Condition, IsNull, And
from repro.compiler import generate_views
from repro.edm.schema import ClientSchema
from repro.errors import SmoError
from repro.incremental.add_association import AddAssociationFK, AddAssociationJT
from repro.incremental.add_entity import AddEntity
from repro.incremental.add_entity_tph import AddEntityTPH
from repro.incremental.model import CompiledModel
from repro.incremental.smo import IncrementalCompiler, Smo
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import StoreSchema, Table


class ReconstructionError(SmoError):
    """The mapping is outside the SMO-expressible subset."""


def _primary_fragment(
    mapping: Mapping, set_name: str, type_name: str
) -> MappingFragment:
    """The fragment storing *type_name*'s own data (most own-attrs mapped)."""
    from repro.algebra.conditions import referenced_types

    schema = mapping.client_schema
    own = set(schema.entity_type(type_name).own_attribute_names) or set(
        schema.key_of(type_name)
    )
    best, best_score = None, -1
    for fragment in mapping.fragments_for_set(set_name):
        if type_name not in referenced_types(fragment.client_condition):
            continue
        score = sum(1 for a, _ in fragment.attribute_map if a in own)
        if score > best_score:
            best, best_score = fragment, score
    if best is None:
        raise ReconstructionError(
            f"type {type_name!r} has no fragment mentioning it; not "
            "SMO-expressible"
        )
    return best


def _discriminator_pin(condition: Condition) -> Optional[Tuple[str, object]]:
    """The single equality pin of a TPH store condition, if that is all."""
    if isinstance(condition, Comparison) and condition.op == "=":
        return (condition.attr, condition.const)
    if isinstance(condition, And):
        pins = [
            op for op in condition.operands
            if isinstance(op, Comparison) and op.op == "="
        ]
        if len(pins) == 1 and all(
            isinstance(op, (Comparison, IsNull)) for op in condition.operands
        ):
            return (pins[0].attr, pins[0].const)
    return None


def reconstruct(mapping: Mapping) -> Tuple[Mapping, List[Smo]]:
    """Split *mapping* into a roots-only base plus an SMO sequence."""
    schema = mapping.client_schema
    store = mapping.store_schema

    base_fragments: List[MappingFragment] = []
    smos: List[Smo] = []
    base_tables: Dict[str, Table] = {}
    base_schema = ClientSchema()

    # Base: hierarchy roots, their sets and their primary fragments.
    for entity_set in schema.entity_sets:
        root = schema.entity_set(entity_set.name).root_type
        base_schema.add_entity_type(schema.entity_type(root))
        from repro.edm.entity import EntitySet

        base_schema.add_entity_set(EntitySet(entity_set.name, root))
        if not mapping.fragments_for_set(entity_set.name):
            continue
        fragment = _primary_fragment(mapping, entity_set.name, root)
        # the root fragment must cover the root alone in the base model:
        # reconstruct its pristine condition
        from repro.algebra.conditions import IsOf

        base_fragments.append(
            MappingFragment(
                client_source=entity_set.name,
                is_association=False,
                client_condition=IsOf(root),
                store_table=fragment.store_table,
                store_condition=fragment.store_condition,
                attribute_map=tuple(
                    (a, c)
                    for a, c in fragment.attribute_map
                    if a in schema.attribute_names_of(root)
                ),
            )
        )
        base_tables[fragment.store_table] = store.table(fragment.store_table)

    base_store = StoreSchema(
        [_strip_foreign_keys(t, base_tables) for t in base_tables.values()]
    )
    base_mapping = Mapping(base_schema, base_store, base_fragments)

    # Entities: breadth-first, so parents exist when children are added.
    for entity_set in schema.entity_sets:
        root = schema.entity_set(entity_set.name).root_type
        for type_name in schema.descendants(root):
            smos.append(_entity_smo(mapping, entity_set.name, type_name))

    # Associations.
    for association in schema.associations:
        fragment = mapping.fragment_for_association(association.name)
        if fragment is None:
            continue
        smos.append(_association_smo(mapping, association, fragment))

    return base_mapping, smos


def _strip_foreign_keys(table: Table, kept: Dict[str, Table]) -> Table:
    """Drop FKs referencing tables outside the base (added back by SMOs)."""
    fks = tuple(fk for fk in table.foreign_keys if fk.ref_table in kept)
    return Table(table.name, table.columns, table.primary_key, fks)


def _entity_smo(mapping: Mapping, set_name: str, type_name: str) -> Smo:
    schema = mapping.client_schema
    entity_type = schema.entity_type(type_name)
    parent = entity_type.parent
    assert parent is not None
    fragment = _primary_fragment(mapping, set_name, type_name)
    parent_fragment = _primary_fragment(mapping, set_name, parent)
    new_attributes = tuple(entity_type.attributes)

    # TPH: same table as the parent's primary fragment + a discriminator pin
    pin = _discriminator_pin(fragment.store_condition)
    if fragment.store_table == parent_fragment.store_table and pin is not None:
        column, value = pin
        smo = AddEntityTPH(
            name=type_name,
            parent=parent,
            new_attributes=new_attributes,
            table=fragment.store_table,
            discriminator_column=column,
            discriminator_value=value,
            attr_map=tuple(fragment.attribute_map),
        )
        return smo

    alpha = fragment.alpha
    full = set(schema.attribute_names_of(type_name))
    if set(alpha) == full:
        anchor: Optional[str] = None  # TPC
    else:
        # nearest ancestor whose attributes fill the gap
        anchor = None
        for candidate in schema.ancestors(type_name):
            if set(alpha) | set(schema.attribute_names_of(candidate)) == full:
                anchor = candidate
                break
        if anchor is None:
            raise ReconstructionError(
                f"type {type_name!r}: α ∪ att(P) covers att(E) for no ancestor "
                "P; not SMO-expressible"
            )
    table = mapping.store_schema.table(fragment.store_table)
    # only FKs over the columns this SMO creates; association columns (and
    # their FKs) are re-attached by the association SMOs that own them
    mapped_columns = {c for _, c in fragment.attribute_map}
    foreign_keys = tuple(
        fk for fk in table.foreign_keys if set(fk.columns) <= mapped_columns
    )
    return AddEntity(
        name=type_name,
        parent=parent,
        new_attributes=new_attributes,
        alpha=tuple(alpha),
        anchor=anchor,
        table=fragment.store_table,
        attr_map=tuple(fragment.attribute_map),
        table_foreign_keys=foreign_keys,
    )


def _association_smo(mapping: Mapping, association, fragment: MappingFragment) -> Smo:
    table_name = fragment.store_table
    entity_fragments = [
        f
        for f in mapping.fragments_for_table(table_name)
        if not f.is_association
    ]
    attr_map = {a: c for a, c in fragment.attribute_map}
    table = mapping.store_schema.table(table_name)
    if entity_fragments:
        return AddAssociationFK(
            name=association.name,
            end1_type=association.end1.entity_type,
            end2_type=association.end2.entity_type,
            mult1=association.end1.multiplicity,
            mult2=association.end2.multiplicity,
            table=table_name,
            attr_map=tuple(attr_map.items()),
            role1=association.end1.role,
            role2=association.end2.role,
            new_foreign_keys=tuple(table.foreign_keys),
        )
    return AddAssociationJT(
        name=association.name,
        end1_type=association.end1.entity_type,
        end2_type=association.end2.entity_type,
        mult1=association.end1.multiplicity,
        mult2=association.end2.multiplicity,
        table=table_name,
        attr_map=tuple(attr_map.items()),
        table_foreign_keys=tuple(table.foreign_keys),
        role1=association.end1.role,
        role2=association.end2.role,
    )


def replay(
    base_mapping: Mapping, smos: List[Smo]
) -> CompiledModel:
    """Compile the base and apply the SMO sequence incrementally."""
    base = CompiledModel(base_mapping, generate_views(base_mapping))
    compiler = IncrementalCompiler()
    model = base
    for smo in smos:
        model = compiler.apply(model, smo).model
    return model


def verify_reconstruction(mapping: Mapping) -> CompiledModel:
    """Reconstruct, replay, and check semantic equivalence with the target.

    Returns the replayed model; raises on any divergence.
    """
    from repro.mapping.equivalence import compare_views

    base_mapping, smos = reconstruct(mapping)
    replayed = replay(base_mapping, smos)

    target_views = generate_views(mapping)
    comparison = compare_views(mapping, target_views, replayed.views)
    if not comparison.equivalent:
        raise ReconstructionError(
            f"replayed mapping diverges from the target: {comparison}"
        )
    return replayed
