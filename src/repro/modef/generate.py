"""Turning model diffs into SMO sequences (Section 1.2 / 4.1).

``smos_from_diff(model, target_schema)`` diffs the model's client schema
against the edited target, infers the surrounding mapping style for every
addition (MoDEF), and returns the SMO sequence — drops first, then adds —
that the incremental compiler can apply with ``apply_all``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.edm.association import Multiplicity
from repro.edm.diff import (
    AddedAssociation,
    AddedAttribute,
    AddedEntityType,
    DroppedAssociation,
    DroppedEntityType,
    diff_client_schemas,
)
from repro.edm.schema import ClientSchema
from repro.errors import SmoError
from repro.incremental.add_association import AddAssociationFK, AddAssociationJT
from repro.incremental.add_property import AddProperty
from repro.incremental.drop_association import DropAssociation
from repro.incremental.drop_entity import DropEntity
from repro.incremental.model import CompiledModel
from repro.incremental.smo import Smo
from repro.modef.infer import (
    generate_add_entity,
    primary_fragment_of,
    primary_table_of,
)
from repro.relational.schema import ForeignKey


def smos_from_diff(
    model: CompiledModel,
    target_schema: ClientSchema,
    style_overrides: Optional[Dict[str, str]] = None,
) -> List[Smo]:
    """SMOs turning *model*'s client schema into *target_schema*.

    *style_overrides* may force a mapping style per added entity type
    (``{"Customer": "TPC"}``); otherwise MoDEF inference decides.
    """
    overrides = style_overrides or {}
    edits = diff_client_schemas(model.client_schema, target_schema)
    smos: List[Smo] = []
    # The inference for later adds must see earlier adds, so we track the
    # names of types added so far and resolve their styles against the
    # *override-or-inferred* style of their parent chain.  Fragment-level
    # inference still runs against the original model — additions deeper
    # than one level inherit the override of their nearest added ancestor.
    pending_styles: Dict[str, Optional[str]] = {}

    for edit in edits:
        if isinstance(edit, DroppedAssociation):
            smos.append(DropAssociation(edit.name))
        elif isinstance(edit, DroppedEntityType):
            smos.append(DropEntity(edit.name))
        elif isinstance(edit, AddedEntityType):
            style = overrides.get(edit.name)
            if style is None:
                style = pending_styles.get(edit.parent)
            pending_styles[edit.name] = style
            smos.append(
                _DeferredAddEntity(edit.name, edit.parent, edit.attributes, style)
            )
        elif isinstance(edit, AddedAttribute):
            smos.append(_DeferredAddProperty(edit.entity_type, edit.attribute))
        elif isinstance(edit, AddedAssociation):
            smos.append(_DeferredAddAssociation(edit.association))
        else:  # pragma: no cover - diff produces only the above
            raise SmoError(f"unsupported edit {edit!r}")
    return smos


class _Deferred(Smo):
    """An SMO whose concrete parameters depend on the model state at
    application time (tables created by earlier SMOs in the sequence).

    The concrete SMO is resolved in check_preconditions — the first hook
    the compiler calls — and every later hook delegates to it.
    """

    def _resolve(self, model: CompiledModel) -> Smo:
        raise NotImplementedError

    def check_preconditions(self, model: CompiledModel) -> None:
        self._smo = self._resolve(model)
        self.kind = self._smo.kind
        self._smo.check_preconditions(model)

    def evolve_schemas(self, model):
        self._smo.evolve_schemas(model)

    def adapt_fragments(self, model):
        self._smo.adapt_fragments(model)

    def adapt_update_views(self, model):
        self._smo.adapt_update_views(model)

    def validate(self, model, budget, cache=None):
        self._smo.validate(model, budget, cache)
        self.validation_checks = getattr(self._smo, "validation_checks", 0)

    def adapt_query_views(self, model):
        self._smo.adapt_query_views(model)

    def describe(self) -> str:
        if hasattr(self, "_smo"):
            return self._smo.describe()
        return super().describe()


class _DeferredAddEntity(_Deferred):
    kind = "AE"

    def __init__(self, name, parent, attributes, style):
        self.name = name
        self.parent = parent
        self.attributes = attributes
        self.style = style

    def _resolve(self, model: CompiledModel) -> Smo:
        return generate_add_entity(
            model, self.name, self.parent, self.attributes, style=self.style
        )


class _DeferredAddProperty(_Deferred):
    kind = "AP"

    def __init__(self, entity_type, attribute):
        self.entity_type = entity_type
        self.attribute = attribute

    def _resolve(self, model: CompiledModel) -> Smo:
        table = primary_table_of(model, self.entity_type)
        return AddProperty(self.entity_type, self.attribute, table)


class _DeferredAddAssociation(_Deferred):
    kind = "AA"

    def __init__(self, association):
        self.association = association

    def _resolve(self, model: CompiledModel) -> Smo:
        association = self.association
        schema = model.client_schema
        if (
            association.end2.multiplicity is not Multiplicity.MANY
            or association.end1.multiplicity is not Multiplicity.MANY
        ):
            # FK-mappable: orient so the at-most-one end is end2.
            if association.end2.multiplicity is Multiplicity.MANY:
                end1, end2 = association.end2, association.end1
            else:
                end1, end2 = association.end1, association.end2
            e1_fragment = primary_fragment_of(model, end1.entity_type)
            table = e1_fragment.store_table
            key1 = schema.key_of(end1.entity_type)
            key2 = schema.key_of(end2.entity_type)
            attr_map = {}
            for k in key1:
                column = e1_fragment.maps_attr(k)
                if column is None:
                    raise SmoError(
                        f"cannot FK-map {association.name!r}: key attribute "
                        f"{k!r} of {end1.entity_type!r} is unmapped"
                    )
                attr_map[f"{end1.role_name}.{k}"] = column
            fk_columns = []
            for k in key2:
                column = f"{association.name}_{k}"
                attr_map[f"{end2.role_name}.{k}"] = column
                fk_columns.append(column)
            target_fragment = primary_fragment_of(model, end2.entity_type)
            ref_columns = tuple(
                target_fragment.maps_attr(k) or k for k in key2
            )
            foreign_keys = (
                ForeignKey(tuple(fk_columns), target_fragment.store_table, ref_columns),
            )
            return AddAssociationFK.create(
                model,
                association.name,
                end1.entity_type,
                end2.entity_type,
                table,
                attr_map,
                mult1=end1.multiplicity,
                mult2=end2.multiplicity,
                role1=end1.role,
                role2=end2.role,
                new_foreign_keys=foreign_keys,
            )
        # many-to-many: a join table named after the association.
        key1 = schema.key_of(association.end1.entity_type)
        key2 = schema.key_of(association.end2.entity_type)
        attr_map = {}
        fks = []
        for end, key in ((association.end1, key1), (association.end2, key2)):
            fragment = primary_fragment_of(model, end.entity_type)
            columns = []
            for k in key:
                column = f"{end.role_name}_{k}"
                attr_map[f"{end.role_name}.{k}"] = column
                columns.append(column)
            ref_columns = tuple(fragment.maps_attr(k) or k for k in key)
            fks.append(ForeignKey(tuple(columns), fragment.store_table, ref_columns))
        return AddAssociationJT.create(
            model,
            association.name,
            association.end1.entity_type,
            association.end2.entity_type,
            association.name,
            attr_map,
            mult1=association.end1.multiplicity,
            mult2=association.end2.multiplicity,
            table_foreign_keys=fks,
            role1=association.end1.role,
            role2=association.end2.role,
        )
