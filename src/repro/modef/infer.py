"""MoDEF-style mapping-style inference (Section 4.1, [16]).

"To determine appropriate changes to the store model and mapping
fragments, we use the MoDEF system.  It examines existing mapping
fragments in the neighborhood of the changes to determine its mapping
style: TPC, TPT, or TPH.  It then generates an SMO that is consistent
with that mapping style."

This module reimplements that inference over our fragment language:

* **TPH** — the whole hierarchy maps into one table whose fragments pin a
  common discriminator column to distinct constants;
* **TPC** — each concrete type's fragment maps *all* its attributes
  (inherited included) into its own table;
* **TPT** — each type's fragment maps only its non-inherited attributes
  plus the key, joined to ancestors' tables through the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.algebra.conditions import Comparison
from repro.edm.types import Attribute
from repro.errors import SmoError
from repro.incremental.add_entity import AddEntity
from repro.incremental.add_entity_tph import AddEntityTPH
from repro.incremental.model import CompiledModel
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.relational.schema import ForeignKey

TPT = "TPT"
TPC = "TPC"
TPH = "TPH"


@dataclass(frozen=True)
class StyleInference:
    """Outcome of inspecting the neighborhood of a hierarchy."""

    style: str
    #: TPH only: the shared table and discriminator column
    tph_table: Optional[str] = None
    discriminator_column: Optional[str] = None


def primary_fragment_of(model: CompiledModel, type_name: str) -> MappingFragment:
    """The fragment that stores *type_name*'s own data.

    Chosen as the fragment of the type's entity set whose condition
    mentions the type (``IS OF type`` / ``IS OF (ONLY type)`` possibly
    inside the adapted disjunctions) and, among those, the one mapping the
    most of the type's own attributes.
    """
    schema = model.client_schema
    set_name = schema.set_of_type(type_name).name
    own = set(schema.entity_type(type_name).own_attribute_names) or set(
        schema.key_of(type_name)
    )
    best: Optional[MappingFragment] = None
    best_score = -1
    from repro.algebra.conditions import referenced_types

    for fragment in model.mapping.fragments_for_set(set_name):
        if type_name not in referenced_types(fragment.client_condition):
            continue
        score = sum(1 for a, _ in fragment.attribute_map if a in own)
        if score > best_score:
            best, best_score = fragment, score
    if best is None:
        raise SmoError(f"no fragment stores data of type {type_name!r}")
    return best


def primary_table_of(model: CompiledModel, type_name: str) -> str:
    return primary_fragment_of(model, type_name).store_table


def infer_style(model: CompiledModel, anchor_type: str) -> StyleInference:
    """Infer the mapping style of *anchor_type*'s hierarchy neighborhood."""
    schema = model.client_schema
    set_name = schema.set_of_type(anchor_type).name
    root = schema.entity_set(set_name).root_type
    hierarchy = schema.descendants_or_self(root)
    fragments = model.mapping.fragments_for_set(set_name)
    if not fragments:
        raise SmoError(f"hierarchy of {anchor_type!r} is unmapped")

    tables = {f.store_table for f in fragments}
    if len(tables) == 1:
        table = next(iter(tables))
        disc = _common_discriminator(fragments)
        if disc is not None:
            return StyleInference(TPH, tph_table=table, discriminator_column=disc)

    # TPC: the anchor's fragment maps every attribute of the anchor type.
    try:
        fragment = primary_fragment_of(model, anchor_type)
    except SmoError:
        fragment = None
    if fragment is not None:
        mapped = {a for a, _ in fragment.attribute_map}
        if mapped >= set(schema.attribute_names_of(anchor_type)) and len(hierarchy) > 1:
            # every attribute (inherited included) in one table → TPC,
            # unless that is simply a root type with nothing inherited.
            if schema.entity_type(anchor_type).parent is not None or len(tables) > 1:
                inherited = set(schema.attribute_names_of(anchor_type)) - set(
                    schema.entity_type(anchor_type).own_attribute_names
                )
                if inherited and inherited <= mapped:
                    return StyleInference(TPC)

    return StyleInference(TPT)


def _common_discriminator(fragments: Sequence[MappingFragment]) -> Optional[str]:
    """A column every entity fragment pins to a distinct constant."""
    pins: List[Dict[str, object]] = []
    for fragment in fragments:
        if fragment.is_association:
            continue
        fragment_pins: Dict[str, object] = {}
        _collect_equality_pins(fragment.store_condition, fragment_pins)
        pins.append(fragment_pins)
    if not pins:
        return None
    candidates = set(pins[0])
    for fragment_pins in pins[1:]:
        candidates &= set(fragment_pins)
    for column in sorted(candidates):
        values = [fragment_pins[column] for fragment_pins in pins]
        if len(set(map(repr, values))) == len(values):
            return column
    return None


def _collect_equality_pins(condition, pins: Dict[str, object]) -> None:
    from repro.algebra.conditions import And

    if isinstance(condition, Comparison) and condition.op == "=":
        pins[condition.attr] = condition.const
    elif isinstance(condition, And):
        for operand in condition.operands:
            _collect_equality_pins(operand, pins)


def generate_add_entity(
    model: CompiledModel,
    name: str,
    parent: str,
    new_attributes: Sequence[Attribute],
    style: Optional[str] = None,
    table: Optional[str] = None,
) -> Smo:
    """Generate the AddEntity SMO consistent with the inferred style.

    * TPT: a fresh table named after the type, with a foreign key from its
      key columns to the parent's primary table (the store co-evolution
      the paper's experiments describe);
    * TPC: a fresh table holding all attributes;
    * TPH: an AddEntityTPH into the hierarchy table, discriminator value =
      the type name.
    """
    inference = (
        StyleInference(style) if style in (TPT, TPC) else
        infer_style(model, parent) if style is None else None
    )
    if style == TPH or (inference is not None and inference.style == TPH):
        if inference is None or inference.style != TPH:
            inference = infer_style(model, parent)
        if inference.style != TPH:
            raise SmoError(
                f"requested TPH but hierarchy of {parent!r} is not TPH-mapped"
            )
        return AddEntityTPH.create(
            model,
            name,
            parent,
            new_attributes,
            inference.tph_table or "",
            inference.discriminator_column or "",
            name,
        )
    assert inference is not None
    table_name = table if table else name
    if inference.style == TPC:
        return AddEntity.tpc(model, name, parent, new_attributes, table_name)
    # TPT: foreign key from the new table's key to the parent's table.
    schema = model.client_schema
    key = schema.key_of(parent)
    parent_table = primary_table_of(model, parent)
    parent_fragment = primary_fragment_of(model, parent)
    ref_columns = tuple(parent_fragment.maps_attr(k) or k for k in key)
    foreign_keys = (ForeignKey(tuple(key), parent_table, ref_columns),)
    return AddEntity.tpt(
        model, name, parent, new_attributes, table_name, table_foreign_keys=foreign_keys
    )
