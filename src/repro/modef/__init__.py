"""MoDEF-style mapping-style inference and diff-driven SMO generation."""

from repro.modef.generate import smos_from_diff
from repro.modef.reconstruct import (
    ReconstructionError,
    reconstruct,
    replay,
    verify_reconstruction,
)
from repro.modef.infer import (
    StyleInference,
    TPC,
    TPH,
    TPT,
    generate_add_entity,
    infer_style,
    primary_fragment_of,
    primary_table_of,
)

__all__ = [
    "ReconstructionError",
    "StyleInference",
    "TPC",
    "TPH",
    "TPT",
    "generate_add_entity",
    "infer_style",
    "primary_fragment_of",
    "primary_table_of",
    "reconstruct",
    "replay",
    "smos_from_diff",
    "verify_reconstruction",
]
