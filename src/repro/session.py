"""An ORM-style session over a compiled model.

Everything the compilers produce comes together here, the way a
downstream application would use it:

* **queries** run against the relational data through view unfolding
  (Section 1.1's query translation);
* **SaveChanges** translates object-level modifications into the minimal
  store delta through the update views (Section 1.1's update
  translation), with store constraints checked before anything is
  applied;
* **schema evolution** applies an SMO through the incremental compiler
  and *migrates the stored data* — by construction, reading the old data
  through the old query views and storing it through the new update
  views is exactly the semantics-preserving migration, because both
  mappings agree on all pre-existing client states (the Section 2.3
  soundness restriction).

The session is a thin facade over a :class:`~repro.engine.SessionEngine`
— the epoch-based serving core that makes ``query`` safe (and lock-free
on snapshot backends) from any thread while ``evolve`` / ``save`` /
``undo`` serialize through a writer path and publish each change as a
new immutable :class:`~repro.engine.Epoch` with one atomic swap.  The
attributes historical code relies on (``model``, ``plan_cache``,
``journal``, ``backend``, ``validation_cache``) remain available here as
views onto the engine's current epoch.

The session talks to the relational data exclusively through a
:class:`~repro.backend.base.StoreBackend`: the in-memory interpreter, or
a live SQLite database that executes the generated SQL/DDL itself
(``backend="sqlite"``; the ``REPRO_BACKEND`` environment variable picks
the default).  Query, SaveChanges, evolve and undo behave identically on
either engine.

Example::

    session = OrmSession.create(model)                      # in-memory
    session = OrmSession.create(model, backend="sqlite")    # live SQLite
    with session.edit() as state:
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    session.query(EntityQuery("Persons"))
    session.evolve(AddEntity.tpt(...))      # schema + data migrate together
    plan = session.plan([smo1, smo2])       # dry-run: delta + checks, no mutation
    session.evolve_many([smo1, smo2])       # one batch, one neighborhood validation
    session.undo()                          # inverse delta + data snapshot restore
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.backend.base import StoreBackend, create_backend
from repro.backend.memory import MemoryBackend
from repro.budget import WorkBudget
from repro.compiler.validation import ValidationReport
from repro.containment.cache import CacheStats, ValidationCache
from repro.edm.instances import ClientState
from repro.engine import Epoch, JournalEntry, SessionEngine
from repro.errors import SmoError
from repro.incremental.model import CompiledModel
from repro.incremental.smo import EvolutionPlan, Smo
from repro.ivm import DeltaScript
from repro.query.dml import StoreDelta
from repro.query.language import EntityQuery
from repro.query.plancache import PlanCache, ServingStats
from repro.relational.instances import StoreState

__all__ = ["OrmSession", "JournalEntry", "Epoch", "SessionEngine"]


class OrmSession:
    """A compiled model plus the relational data it maps."""

    def __init__(
        self,
        model: CompiledModel,
        store_state: Optional[StoreState] = None,
        backend: Optional[StoreBackend] = None,
        budget: Optional[WorkBudget] = None,
        cache_dir: Optional[str] = None,
        result_cache_budget: Optional[int] = None,
    ) -> None:
        if backend is None:
            # bare StoreState (or nothing): the historical in-memory session
            backend = MemoryBackend(
                store_state
                if store_state is not None
                else StoreState(model.store_schema)
            )
        elif store_state is not None:
            raise SmoError("pass either store_state or backend, not both")
        #: the epoch engine every read and write goes through
        self.engine = SessionEngine(
            model,
            backend,
            budget=budget,
            cache_dir=cache_dir,
            result_cache_budget=result_cache_budget,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def create(
        model: CompiledModel,
        backend: Optional[str] = None,
        db_path: Optional[str] = None,
        pool_size: int = 0,
        cache_dir: Optional[str] = None,
        result_cache_budget: Optional[int] = None,
    ) -> "OrmSession":
        """A session over an empty database.

        *backend* names the store engine (``"memory"`` / ``"sqlite"``);
        when ``None`` the ``REPRO_BACKEND`` environment variable decides
        (defaulting to memory).  *db_path* puts a SQLite store on disk
        instead of in ``:memory:``; *pool_size* > 0 provisions a reader
        connection pool for concurrent serving.  *cache_dir* attaches the
        persistent cross-process validation cache (defaulting to
        ``REPRO_CACHE_DIR`` when set).  *result_cache_budget* bounds the
        materialized result tier in cells (rows × width); ``0`` disables
        it, ``None`` uses the default.
        """
        engine = create_backend(
            backend, model.store_schema, db_path=db_path, pool_size=pool_size
        )
        return OrmSession(
            model,
            backend=engine,
            cache_dir=cache_dir,
            result_cache_budget=result_cache_budget,
        )

    # ------------------------------------------------------------------
    # Epoch views (compatibility surface — these read the current epoch)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Epoch:
        """The current immutable serving epoch."""
        return self.engine.epoch

    @property
    def model(self) -> CompiledModel:
        return self.engine.epoch.model

    @property
    def plan_cache(self) -> PlanCache:
        return self.engine.epoch.plan_cache

    @property
    def journal(self) -> List[JournalEntry]:
        return self.engine.journal

    @property
    def backend(self) -> StoreBackend:
        return self.engine.backend

    @property
    def validation_cache(self) -> ValidationCache:
        return self.engine.validation_cache

    @property
    def store_state(self) -> StoreState:
        """The backend's contents as a (possibly cached) StoreState."""
        return self.engine.backend.to_store_state()

    @store_state.setter
    def store_state(self, state: StoreState) -> None:
        self.engine.replace_contents(state)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> ClientState:
        """Materialise the whole object view of the database (Q)."""
        return self.engine.load()

    def query(self, query: EntityQuery) -> List[object]:
        """Answer an object query from the relational data alone.

        Served through the current epoch's :class:`PlanCache`: the query
        is split into a constant-free shape plus a parameter vector, and
        structurally identical queries reuse one unfolded (and, on
        SQLite, SQL-compiled) plan.  Safe to call from any thread.
        """
        return self.engine.query(query)

    def explain(self, query: EntityQuery) -> str:
        """The store-level plan a query unfolds to (Entity-SQL text).

        Routed through the same plan cache as :meth:`query`, so explain
        shows — and warms — exactly the plan execution will use.
        """
        plan, values, _ = self.engine.plan_for(query)
        return plan.explain(values)

    def explain_sql(
        self, query: EntityQuery
    ) -> List[Tuple[str, str, Tuple[object, ...]]]:
        """Per-branch ``(constructed type, SQL text, bound parameters)``
        of the cached plan — the statements :meth:`query` executes on a
        SQL backend."""
        plan, values, epoch = self.engine.plan_for(query)
        return [
            (branch.concrete_type, compiled.text, params)
            for branch, compiled, params in plan.bound_sql(
                epoch.model.store_schema, values
            )
        ]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, new_state: ClientState) -> StoreDelta:
        """SaveChanges: persist *new_state* as the object view.

        Computes the minimal row delta (via the update views) and hands
        it to the backend, which applies it transactionally — the
        interpreter checks PK/FK explicitly, SQLite enforces them
        natively.  On a constraint violation nothing is applied.
        """
        return self.engine.save(new_state)

    @contextmanager
    def edit(self) -> Iterator[ClientState]:
        """Edit the object view in place and save on exit::

            with session.edit() as state:
                state.add_entity("Persons", Entity.of("Person", Id=1, ...))
        """
        state = self.load()
        yield state
        self.save(state)

    def save_delta(self, script: "DeltaScript") -> StoreDelta:
        """Incremental SaveChanges: apply a recorded edit script.

        Instead of re-materializing every update view over the whole
        client state (what :meth:`save` does), the script's net
        :class:`~repro.ivm.ClientDelta` is pushed through compiled
        per-view delta rules (:mod:`repro.ivm.writeplan`), producing
        exactly the same store DML at cost proportional to the *change*,
        not the database.  Shapes the delta rules cannot handle fall back
        to a whole-state save transparently — the result is always
        byte-identical to :meth:`save`.
        """
        return self.engine.apply_script(script)

    @contextmanager
    def edit_incremental(self) -> Iterator[ClientState]:
        """Like :meth:`edit`, but mutations are recorded and saved
        through the incremental write path on exit::

            with session.edit_incremental() as state:
                state.update_entity("Persons", changed_person)
        """
        with self.engine.incremental_edit() as state:
            yield state

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def evolve(self, smo: Smo) -> StoreDelta:
        """Apply one SMO incrementally and migrate the stored data.

        A batch of one: see :meth:`evolve_many` for the mechanics and the
        journal entry this leaves behind.
        """
        return self.engine.evolve(smo)

    def evolve_many(
        self, smos: Sequence[Smo], label: Optional[str] = None
    ) -> StoreDelta:
        """Apply a batch of SMOs as one transaction and migrate the data.

        See :meth:`SessionEngine.evolve_many`: the batch validates one
        union neighborhood, the evolved model + migrated store + surviving
        plan-cache slice are built off to the side, and the new epoch is
        published with a single atomic swap — concurrent queries never
        observe a half-applied delta.
        """
        return self.engine.evolve_many(smos, label=label)

    def plan(self, smos: Sequence[Smo]) -> EvolutionPlan:
        """Dry-run a batch: the delta it would emit and the checks it
        would schedule, without touching the session's model or data."""
        return self.engine.plan(smos)

    def migration_script(self, smos: Sequence[Smo]):
        """Dry-run the *store-side* migration of a batch: the ordered
        DDL + DML :class:`~repro.backend.migrate.MigrationScript` that
        :meth:`evolve_many` would execute, without mutating anything."""
        return self.engine.migration_script(smos)

    def undo(self) -> JournalEntry:
        """Roll back the most recent :meth:`evolve` / :meth:`evolve_many`.

        The model is restored by replaying the journal entry's *inverse*
        delta (not from a snapshot — exercising the invertibility of the
        recorded ops), and the store state from the entry's pre-migration
        snapshot.  Object-level edits saved *after* the evolution are
        rolled back with it.
        """
        return self.engine.undo()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        budget: Optional[WorkBudget] = None,
        workers: int = 1,
        executor: Optional[str] = None,
        symbolic: bool = True,
        scope: str = "full",
        shard_size: Optional[int] = None,
    ) -> ValidationReport:
        """Validate the current model through the session cache.

        Repeated calls (and SMO validations in between) share one
        :class:`ValidationCache`, so re-validating an unchanged or locally
        changed model is dominated by cache hits — the report's
        ``cache_hits`` / ``cache_misses`` show the split.  When the
        session's cache has a persistent store attached (``cache_dir`` /
        ``REPRO_CACHE_DIR``), a fresh process warms from disk the same
        way (``l2_hits``).  ``symbolic`` toggles the layered containment
        fast path; ``scope="delta"`` re-checks only the neighborhood of
        the deltas composed since the last successful validate (see
        :meth:`SessionEngine.validate`); ``shard_size`` tunes the
        work-stealing shard granularity of parallel executors.
        """
        return self.engine.validate(
            budget=budget,
            workers=workers,
            executor=executor,
            symbolic=symbolic,
            scope=scope,
            shard_size=shard_size,
        )

    def cache_stats(self) -> CacheStats:
        return self.engine.validation_cache.stats()

    def serving_stats(self) -> ServingStats:
        """Hit/miss/eviction counters of the query-serving fast path."""
        backend = self.engine.backend
        statement_stats = getattr(backend, "statement_cache_stats", None)
        index_stats = getattr(backend, "index_stats", None)
        return ServingStats(
            backend=backend.name,
            plans=self.plan_cache.stats(),
            statements=statement_stats() if statement_stats else None,
            indexes=index_stats() if index_stats else None,
            epoch=self.engine.stats(),
            writeplans=self.engine.writeplans.stats(),
            validation=self.cache_stats(),
            results=self.engine.epoch.results.stats(),
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return (
            f"OrmSession({self.model}, {self.store_state.row_count()} rows)"
        )
