"""An ORM-style session over a compiled model.

Everything the compilers produce comes together here, the way a
downstream application would use it:

* **queries** run against the relational data through view unfolding
  (Section 1.1's query translation);
* **SaveChanges** translates object-level modifications into the minimal
  store delta through the update views (Section 1.1's update
  translation), with store constraints checked before anything is
  applied;
* **schema evolution** applies an SMO through the incremental compiler
  and *migrates the stored data* — by construction, reading the old data
  through the old query views and storing it through the new update
  views is exactly the semantics-preserving migration, because both
  mappings agree on all pre-existing client states (the Section 2.3
  soundness restriction).

The session talks to the relational data exclusively through a
:class:`~repro.backend.base.StoreBackend`: the in-memory interpreter, or
a live SQLite database that executes the generated SQL/DDL itself
(``backend="sqlite"``; the ``REPRO_BACKEND`` environment variable picks
the default).  Query, SaveChanges, evolve and undo behave identically on
either engine.

Example::

    session = OrmSession.create(model)                      # in-memory
    session = OrmSession.create(model, backend="sqlite")    # live SQLite
    with session.edit() as state:
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    session.query(EntityQuery("Persons"))
    session.evolve(AddEntity.tpt(...))      # schema + data migrate together
    plan = session.plan([smo1, smo2])       # dry-run: delta + checks, no mutation
    session.evolve_many([smo1, smo2])       # one batch, one neighborhood validation
    session.undo()                          # inverse delta + data snapshot restore
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from typing import Optional

from repro.backend.base import StoreBackend, create_backend
from repro.backend.memory import MemoryBackend
from repro.backend.migrate import plan_migration
from repro.budget import WorkBudget
from repro.compiler.validation import ValidationReport, validate_mapping
from repro.containment.cache import CacheStats, ValidationCache
from repro.edm.instances import ClientState, Entity
from repro.errors import SmoError
from repro.incremental.delta import MappingDelta
from repro.incremental.model import CompiledModel
from repro.incremental.smo import EvolutionPlan, IncrementalCompiler, Smo
from repro.mapping.roundtrip import apply_query_views, apply_update_views
from repro.query.dml import StoreDelta, diff_store_states
from repro.query.language import EntityQuery
from repro.query.plancache import PlanCache, ServingStats
from repro.relational.instances import StoreState


@dataclass(frozen=True)
class JournalEntry:
    """One committed evolution in the session's transactional journal.

    Records everything needed to report on — and to *undo* — the step:
    the declarative :class:`MappingDelta` the batch emitted (whose
    ``inverse()`` replays the model back), a snapshot of the store state
    from before the migration, and the neighborhood checks the batch
    scheduled (used by the benchmarks to compare sequential vs batched
    validation work).
    """

    label: str
    smos: Tuple[Smo, ...]
    delta: MappingDelta
    store_delta: "StoreDelta"
    store_before: StoreState
    check_names: Tuple[str, ...]

    @property
    def scheduled_checks(self) -> int:
        return len(self.check_names)

    def __str__(self) -> str:
        return (
            f"{self.label}: {len(self.delta)} delta op(s), "
            f"{self.scheduled_checks} check(s)"
        )


class OrmSession:
    """A compiled model plus the relational data it maps."""

    def __init__(
        self,
        model: CompiledModel,
        store_state: Optional[StoreState] = None,
        backend: Optional[StoreBackend] = None,
        budget: Optional[WorkBudget] = None,
    ) -> None:
        self.model = model
        if backend is None:
            # bare StoreState (or nothing): the historical in-memory session
            backend = MemoryBackend(
                store_state
                if store_state is not None
                else StoreState(model.store_schema)
            )
        elif store_state is not None:
            raise SmoError("pass either store_state or backend, not both")
        #: the store engine every read and write goes through
        self.backend = backend
        # One fingerprint-keyed memo for the whole session: validation work
        # for neighborhoods untouched by successive SMOs is re-served from
        # here instead of being recomputed (the Section 1.2 premise).
        self.validation_cache = ValidationCache()
        self._compiler = IncrementalCompiler(
            budget=budget, cache=self.validation_cache
        )
        # One plan per query *shape*: repeated queries skip unfolding (and,
        # on SQLite, SQL generation) entirely.  Every model mutation goes
        # through evolve/undo below, which invalidate exactly the plans the
        # composed delta can affect.
        self.plan_cache = PlanCache()
        #: committed evolutions, oldest first; ``undo`` pops from the end
        self.journal: List[JournalEntry] = []

    # ------------------------------------------------------------------
    @staticmethod
    def create(
        model: CompiledModel,
        backend: Optional[str] = None,
        db_path: Optional[str] = None,
    ) -> "OrmSession":
        """A session over an empty database.

        *backend* names the store engine (``"memory"`` / ``"sqlite"``);
        when ``None`` the ``REPRO_BACKEND`` environment variable decides
        (defaulting to memory).  *db_path* puts a SQLite store on disk
        instead of in ``:memory:``.
        """
        engine = create_backend(backend, model.store_schema, db_path=db_path)
        return OrmSession(model, backend=engine)

    # ------------------------------------------------------------------
    @property
    def store_state(self) -> StoreState:
        """The backend's contents as a (possibly cached) StoreState."""
        return self.backend.to_store_state()

    @store_state.setter
    def store_state(self, state: StoreState) -> None:
        self.backend.replace_contents(state)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> ClientState:
        """Materialise the whole object view of the database (Q)."""
        return apply_query_views(
            self.model.views, self.store_state, self.model.client_schema
        )

    def query(self, query: EntityQuery) -> List[object]:
        """Answer an object query from the relational data alone.

        Served through the session's :class:`PlanCache`: the query is
        split into a constant-free shape plus a parameter vector, and
        structurally identical queries reuse one unfolded (and, on
        SQLite, SQL-compiled) plan.
        """
        plan, values = self.plan_cache.plan_for(self.model, query)
        return plan.execute(self.backend, values)

    def explain(self, query: EntityQuery) -> str:
        """The store-level plan a query unfolds to (Entity-SQL text).

        Routed through the same plan cache as :meth:`query`, so explain
        shows — and warms — exactly the plan execution will use.
        """
        plan, values = self.plan_cache.plan_for(self.model, query)
        return plan.explain(values)

    def explain_sql(
        self, query: EntityQuery
    ) -> List[Tuple[str, str, Tuple[object, ...]]]:
        """Per-branch ``(constructed type, SQL text, bound parameters)``
        of the cached plan — the statements :meth:`query` executes on a
        SQL backend."""
        plan, values = self.plan_cache.plan_for(self.model, query)
        return [
            (branch.concrete_type, compiled.text, params)
            for branch, compiled, params in plan.bound_sql(
                self.model.store_schema, values
            )
        ]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, new_state: ClientState) -> StoreDelta:
        """SaveChanges: persist *new_state* as the object view.

        Computes the minimal row delta (via the update views) and hands
        it to the backend, which applies it transactionally — the
        interpreter checks PK/FK explicitly, SQLite enforces them
        natively.  On a constraint violation nothing is applied.
        """
        target = apply_update_views(
            self.model.views, new_state, self.model.store_schema
        )
        delta = diff_store_states(self.store_state, target)
        self.backend.apply_delta(delta)
        return delta

    @contextmanager
    def edit(self) -> Iterator[ClientState]:
        """Edit the object view in place and save on exit::

            with session.edit() as state:
                state.add_entity("Persons", Entity.of("Person", Id=1, ...))
        """
        state = self.load()
        yield state
        self.save(state)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def evolve(self, smo: Smo) -> StoreDelta:
        """Apply one SMO incrementally and migrate the stored data.

        A batch of one: see :meth:`evolve_many` for the mechanics and the
        journal entry this leaves behind.
        """
        return self.evolve_many([smo], label=smo.describe())

    def evolve_many(
        self, smos: Sequence[Smo], label: Optional[str] = None
    ) -> StoreDelta:
        """Apply a batch of SMOs as one transaction and migrate the data.

        The whole batch compiles through
        :meth:`~repro.incremental.smo.IncrementalCompiler.compile_batch`,
        so the scheduler validates the *union* neighborhood of the
        composed delta once instead of once per SMO.  Migration = read
        the data through the *old* query views, embed the resulting
        client state into the evolved schema (the paper's ``f(c)``), and
        store it through the *new* update views; the Section 2.3
        soundness restriction guarantees this changes nothing for
        pre-existing data.  On success a :class:`JournalEntry` is
        appended (making the step :meth:`undo`-able); on a validation
        abort the session — model, data, journal, cache — is untouched.
        """
        smos = tuple(smos)
        old_client = self.load()
        batch = self._compiler.compile_batch(self.model, smos)
        evolved = batch.model
        migrated_client = old_client.embed_into(evolved.client_schema)
        new_store = apply_update_views(
            evolved.views, migrated_client, evolved.store_schema
        )
        store_before = self.store_state
        delta = diff_store_states(store_before, new_store)
        # Lower the store-side evolution to an ordered DDL + DML script
        # and let the backend execute it as one transaction (the memory
        # backend short-circuits to the computed target; SQLite runs the
        # script for real and must land on the same state).
        script = plan_migration(
            self.model.store_schema, evolved.store_schema, store_before, new_store
        )
        entry = JournalEntry(
            label=label or "; ".join(smo.describe() for smo in smos),
            smos=batch.smos,
            delta=batch.delta,
            store_delta=delta,
            store_before=store_before,
            check_names=batch.check_names,
        )
        self.backend.migrate(script, evolved.store_schema, new_store)
        self.model = evolved
        self.journal.append(entry)
        # Delta-scoped plan invalidation: only plans whose entity set or
        # scanned tables the batch touched are evicted; shapes over
        # untouched sets keep serving from cache across the evolution.
        self.plan_cache.invalidate(batch.delta, evolved.mapping)
        return delta

    def plan(self, smos: Sequence[Smo]) -> EvolutionPlan:
        """Dry-run a batch: the delta it would emit and the checks it
        would schedule, without touching the session's model or data."""
        return self._compiler.plan(self.model, smos)

    def migration_script(self, smos: Sequence[Smo]):
        """Dry-run the *store-side* migration of a batch: the ordered
        DDL + DML :class:`~repro.backend.migrate.MigrationScript` that
        :meth:`evolve_many` would execute, without mutating anything."""
        smos = tuple(smos)
        old_client = self.load()
        batch = self._compiler.compile_batch(self.model, smos)
        evolved = batch.model
        migrated_client = old_client.embed_into(evolved.client_schema)
        target = apply_update_views(
            evolved.views, migrated_client, evolved.store_schema
        )
        return plan_migration(
            self.model.store_schema, evolved.store_schema, self.store_state, target
        )

    def undo(self) -> JournalEntry:
        """Roll back the most recent :meth:`evolve` / :meth:`evolve_many`.

        The model is restored by replaying the journal entry's *inverse*
        delta (not from a snapshot — exercising the invertibility of the
        recorded ops), and the store state from the entry's pre-migration
        snapshot.  Object-level edits saved *after* the evolution are
        rolled back with it.
        """
        if not self.journal:
            raise SmoError("nothing to undo: the session journal is empty")
        entry = self.journal.pop()
        inverse = entry.delta.inverse()
        self.model = self.model.apply(inverse)
        self.backend.replace_contents(entry.store_before)
        # The inverse delta touches the same neighborhood as the original
        # evolution; plans outside it are still valid and survive the undo.
        self.plan_cache.invalidate(inverse, self.model.mapping)
        return entry

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        budget: Optional[WorkBudget] = None,
        workers: int = 1,
        executor: Optional[str] = None,
        symbolic: bool = True,
    ) -> ValidationReport:
        """Fully validate the current model through the session cache.

        Repeated calls (and SMO validations in between) share one
        :class:`ValidationCache`, so re-validating an unchanged or locally
        changed model is dominated by cache hits — the report's
        ``cache_hits`` / ``cache_misses`` show the split.  ``symbolic``
        toggles the layered containment fast path (branch subsumption and
        counterexample replay before state enumeration).
        """
        return validate_mapping(
            self.model.mapping,
            self.model.views,
            budget,
            workers=workers,
            executor=executor,
            cache=self.validation_cache,
            symbolic=symbolic,
        )

    def cache_stats(self) -> CacheStats:
        return self.validation_cache.stats()

    def serving_stats(self) -> ServingStats:
        """Hit/miss/eviction counters of the query-serving fast path."""
        statement_stats = getattr(self.backend, "statement_cache_stats", None)
        index_stats = getattr(self.backend, "index_stats", None)
        return ServingStats(
            backend=self.backend.name,
            plans=self.plan_cache.stats(),
            statements=statement_stats() if statement_stats else None,
            indexes=index_stats() if index_stats else None,
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return (
            f"OrmSession({self.model}, {self.store_state.row_count()} rows)"
        )
