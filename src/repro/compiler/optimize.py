"""Query-view optimization (Section 6's comparative-study direction).

The full compiler's raw query views are full outer joins of every fragment
contribution with complete flag signatures in the CASE.  The paper notes
the production compiler "can leverage schema constraints to reduce costly
operations like full outer joins into cheaper operations, such as UNION
ALL and left outer joins" and that the incremental compiler emits those
shapes directly.  This module implements the reductions, so the full
compiler can also produce Figure-2-shaped views:

* **FOJ → LOJ**: if every entity matched by fragment *i* is also matched
  by the fragments already joined (ψ_i implies their disjunction), no
  right-padding can occur — a left outer join suffices;
* **FOJ → UNION ALL**: fragments whose client conditions are disjoint
  from everything joined so far never share rows — start a new UNION
  branch instead of joining;
* **CASE minimization**: a branch's positive flag tests drop fragments
  implied by other positives, and its negative tests keep only flags that
  distinguish the cell from signature-supersets — producing exactly the
  ``WHEN _from1 AND NOT _from2`` guards of Figure 2.

All reductions are justified by condition-space implication checks, so
they are semantically safe; the equivalence tests verify optimized and
raw views agree on canonical states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    Comparison,
    Condition,
    Not,
    and_,
    or_,
)
from repro.algebra.constructors import Constructor, IfCtor
from repro.algebra.queries import (
    LeftOuterJoin,
    Query,
    Select,
    union_all,
)
from repro.budget import WorkBudget
from repro.compiler.analysis import SetAnalysis, TypeCell
from repro.compiler.viewgen import (
    cell_constructor,
    flag_name,
    fragment_contribution,
)
from repro.containment.spaces import ClientConditionSpace
from repro.mapping.fragments import Mapping
from repro.mapping.views import CompiledViews, QueryView


class _Group:
    """One UNION branch: a left-outer-join chain of contributions."""

    def __init__(self, query: Query, condition: Condition) -> None:
        self.query = query
        self.condition = condition  # disjunction of member fragments' ψ


def build_optimized_query_views_for_set(
    mapping: Mapping,
    set_name: str,
    analysis: Optional[SetAnalysis] = None,
    budget: Optional[WorkBudget] = None,
) -> Dict[str, QueryView]:
    """Optimized query views for one entity set (LOJ/UNION ALL shapes)."""
    schema = mapping.client_schema
    if analysis is None:
        analysis = SetAnalysis(mapping, set_name, budget)
    fragments = analysis.fragments
    if not fragments:
        return {}
    key = schema.key_of(schema.entity_set(set_name).root_type)
    conditions = [f.client_condition for f in fragments]
    space = ClientConditionSpace(schema, set_name, conditions)

    # ------------------------------------------------------------------
    # Assemble groups: LOJ within a group, UNION ALL across groups.
    # ------------------------------------------------------------------
    groups: List[_Group] = []
    for index, fragment in enumerate(fragments):
        contribution = fragment_contribution(fragment, index)
        psi = fragment.client_condition
        placed = False
        for group in groups:
            if space.implies(psi, group.condition, budget):
                group.query = LeftOuterJoin(group.query, contribution, on=tuple(key))
                group.condition = or_(group.condition, psi)
                placed = True
                break
        if placed:
            continue
        overlapping = [
            g for g in groups if space.satisfiable(and_(psi, g.condition), budget)
        ]
        if overlapping:
            # Partial overlap: the fragment bridges the groups it touches,
            # so they must all be merged into one full-outer-join group
            # (rare for SMO-generated mappings).
            from repro.algebra.queries import FullOuterJoin

            merged = overlapping[0]
            for other in overlapping[1:]:
                merged.query = FullOuterJoin(merged.query, other.query, on=tuple(key))
                merged.condition = or_(merged.condition, other.condition)
                groups.remove(other)
            merged.query = FullOuterJoin(merged.query, contribution, on=tuple(key))
            merged.condition = or_(merged.condition, psi)
        else:
            groups.append(_Group(contribution, psi))

    set_query: Query = union_all([g.query for g in groups])

    # ------------------------------------------------------------------
    # Minimized branch conditions per (type, cell).
    # ------------------------------------------------------------------
    all_cells = analysis.all_cells()
    root = schema.entity_set(set_name).root_type
    ordered_types = [
        t
        for t in reversed(schema.descendants_or_self(root))
        if not schema.entity_type(t).abstract
    ]
    branches: List[Tuple[TypeCell, Condition, Constructor]] = []
    for type_name in ordered_types:
        for cell in analysis.cells_for_type(type_name):
            condition = minimized_branch_condition(cell, all_cells, space, budget)
            branches.append((cell, condition, cell_constructor(analysis, cell)))

    views: Dict[str, QueryView] = {}
    for entity_type in schema.descendants_or_self(root):
        family = set(schema.descendants_or_self(entity_type))
        relevant = [b for b in branches if b[0].concrete_type in family]
        if not relevant:
            continue
        view_filter = or_(*[condition for _, condition, _ in relevant])
        query: Query = Select(set_query, view_filter)
        constructor: Constructor = relevant[-1][2]
        for cell, condition, ctor in reversed(relevant[:-1]):
            constructor = IfCtor(condition, ctor, constructor)
        views[entity_type] = QueryView(entity_type, query, constructor)
    return views


def minimized_branch_condition(
    cell: TypeCell,
    all_cells: Sequence[TypeCell],
    space: ClientConditionSpace,
    budget: Optional[WorkBudget] = None,
) -> Condition:
    """The smallest flag test that identifies *cell* among *all_cells*.

    Positive literals: the cell's signature minus fragments implied by
    another kept positive (``IS OF Employee`` implies the widened HR
    condition, so ``_from1`` alone suffices).  Negative literals: only
    the flags that separate this cell from cells with strictly larger
    signatures (Person needs ``NOT _from_Emp`` because Employee's
    signature extends Person's).
    """
    fragments = space.conditions  # ψ in fragment order
    signature = cell.signature

    positives = set(signature)
    for i in sorted(signature):
        others = positives - {i}
        if not others:
            continue
        implied = any(
            space.implies(fragments[j], fragments[i], budget) for j in others
        )
        if implied:
            positives.discard(i)

    negatives = set()
    for other in all_cells:
        if other.signature > signature:
            negatives |= other.signature - signature
    # a negative is unnecessary if no remaining ambiguity: keep only the
    # minimal distinguishing flags per superset cell
    minimized_negatives = set()
    for other in all_cells:
        if other.signature > signature:
            extra = other.signature - signature
            if not (extra & minimized_negatives):
                minimized_negatives.add(min(extra))

    literals: List[Condition] = []
    for index in sorted(positives):
        literals.append(Comparison(flag_name(index), "=", True))
    for index in sorted(minimized_negatives):
        literals.append(Not(Comparison(flag_name(index), "=", True)))
    return and_(*literals)


def optimize_views(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
) -> CompiledViews:
    """Replace every entity set's query views with optimized shapes.

    Association and update views are untouched (they are already in their
    cheap shapes).
    """
    optimized = views.clone()
    for entity_set in mapping.client_schema.entity_sets:
        if not mapping.fragments_for_set(entity_set.name):
            continue
        for view in build_optimized_query_views_for_set(
            mapping, entity_set.name, budget=budget
        ).values():
            optimized.set_query_view(view)
    return optimized
