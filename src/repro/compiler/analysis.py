"""Fragment analysis shared by the full compiler's view generation and
validation.

The central notions (re-derived from Melnik et al. [13]):

* a fragment *applies* to a concrete type τ if its client condition is
  satisfiable together with ``IS OF (ONLY τ)``;
* the *client cells* of τ are the achievable truth vectors of the
  (non-type) fragment conditions over τ's attribute space — one cell per
  distinguishable class of τ-entities (e.g. age ≥ 18 vs age < 18 for a
  partitioned mapping);
* the *signature* of a (τ, cell) pair is the set of fragments that hold
  on it; signatures drive both the CASE construction in query views and
  the disambiguation check (two different (τ, cell) pairs with the same
  signature cannot be told apart when reading the store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.conditions import (
    Comparison,
    Condition,
    IsOfOnly,
    TRUE,
    and_,
)
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.spaces import ClientConditionSpace
from repro.edm.schema import ClientSchema
from repro.errors import ValidationError
from repro.mapping.fragments import Mapping, MappingFragment


@dataclass(frozen=True)
class TypeCell:
    """One distinguishable class of entities of a concrete type.

    ``condition`` is the conjunction of fragment-condition literals that
    defines the cell (TRUE when the type has a single cell);
    ``signature`` is the set of indices (into the entity-fragment list of
    the set) of fragments that hold on the cell.
    """

    concrete_type: str
    condition: Condition
    signature: FrozenSet[int]


class SetAnalysis:
    """Analysis of the entity fragments of one entity set."""

    def __init__(
        self,
        mapping: Mapping,
        set_name: str,
        budget: Optional[WorkBudget] = None,
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.mapping = mapping
        self.schema: ClientSchema = mapping.client_schema
        self.set_name = set_name
        self.fragments: Tuple[MappingFragment, ...] = mapping.fragments_for_set(set_name)
        self.budget = budget
        self.cache = cache
        self._cells: Dict[str, Tuple[TypeCell, ...]] = {}

    # ------------------------------------------------------------------
    def cells_for_type(self, type_name: str) -> Tuple[TypeCell, ...]:
        """The client cells of *type_name* (cached)."""
        if type_name not in self._cells:
            self._cells[type_name] = self._compute_cells(type_name)
        return self._cells[type_name]

    def _compute_cells(self, type_name: str) -> Tuple[TypeCell, ...]:
        conditions = [
            and_(fragment.client_condition, IsOfOnly(type_name))
            for fragment in self.fragments
        ]
        space = ClientConditionSpace(
            self.schema, self.set_name, conditions, types=(type_name,)
        )
        vectors = space.truth_vectors(conditions, self.budget, self.cache)
        cells: List[TypeCell] = []
        for vector, witness in sorted(vectors.items(), key=lambda kv: kv[0], reverse=True):
            signature = frozenset(i for i, bit in enumerate(vector) if bit)
            condition = self._cell_condition(vector)
            cells.append(TypeCell(type_name, condition, signature))
        return tuple(cells)

    def _cell_condition(self, vector: Tuple[bool, ...]) -> Condition:
        literals: List[Condition] = []
        for index, bit in enumerate(vector):
            if bit:
                literals.append(self.fragments[index].client_condition)
        return and_(*literals) if literals else TRUE

    # ------------------------------------------------------------------
    def applicable_fragment_indices(self, type_name: str) -> FrozenSet[int]:
        """Indices of fragments applying to at least one τ-entity."""
        result = set()
        for cell in self.cells_for_type(type_name):
            result |= cell.signature
        return frozenset(result)

    def all_cells(self) -> List[TypeCell]:
        cells: List[TypeCell] = []
        for type_name in self.schema.concrete_types_of_set(self.set_name):
            cells.extend(self.cells_for_type(type_name))
        return cells

    # ------------------------------------------------------------------
    def covered_attributes(self, cell: TypeCell) -> Dict[str, Optional[str]]:
        """Map each attribute of the cell's type to how it is recovered.

        Value is the attribute name when some applicable fragment projects
        it, the string ``"=<const>"`` marker when the cell's condition pins
        it to a constant, and ``None`` when the attribute is *not* covered
        — a validation failure.
        """
        type_name = cell.concrete_type
        attributes = self.schema.attribute_names_of(type_name)
        coverage: Dict[str, Optional[str]] = {}
        for attr in attributes:
            mapped = any(
                attr in self.fragments[i].alpha for i in cell.signature
            )
            if mapped:
                coverage[attr] = attr
                continue
            pinned = self.pinned_value(cell, attr)
            if pinned is not _UNPINNED:
                coverage[attr] = f"={pinned!r}"
            else:
                coverage[attr] = None
        return coverage

    def pinned_value(self, cell: TypeCell, attr: str) -> object:
        """The constant the cell's condition forces *attr* to, if any.

        Decided semantically: collect the candidate constants mentioned for
        *attr* (plus enum-domain values) and test whether the cell's
        condition entails ``attr = c`` for exactly one of them.
        """
        attribute = self.schema.attribute_of(cell.concrete_type, attr)
        candidates: List[object] = []
        for fragment in self.fragments:
            for atom in fragment.client_condition.atoms():
                if isinstance(atom, Comparison) and atom.attr == attr and atom.op == "=":
                    if atom.const not in candidates:
                        candidates.append(atom.const)
        if attribute.domain.values is not None:
            for value in sorted(attribute.domain.values, key=repr):
                if value not in candidates:
                    candidates.append(value)
        space = ClientConditionSpace(
            self.schema,
            self.set_name,
            [cell.condition],
            types=(cell.concrete_type,),
        )
        for candidate in candidates:
            if space.implies(cell.condition, Comparison(attr, "=", candidate), self.budget):
                return candidate
        return _UNPINNED


class _Unpinned:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unpinned>"


_UNPINNED = _Unpinned()


def is_unpinned(value: object) -> bool:
    return value is _UNPINNED


def check_coverage(analysis: SetAnalysis) -> None:
    """Every attribute of every cell must be recoverable (lossless-ness).

    This is the ⊇ direction of roundtripping: if an attribute of some
    entity class is neither stored nor pinned by a condition, storing and
    re-reading the entity loses it.
    """
    for cell in analysis.all_cells():
        coverage = analysis.covered_attributes(cell)
        missing = sorted(attr for attr, how in coverage.items() if how is None)
        if missing:
            raise ValidationError(
                f"mapping does not roundtrip: attributes {missing} of type "
                f"{cell.concrete_type!r} (cell {cell.condition}) are not covered "
                f"by any mapping fragment",
                check="coverage",
            )


def check_disambiguation(analysis: SetAnalysis) -> None:
    """Distinct cells must have distinct fragment signatures.

    If two (type, cell) classes activate exactly the same fragments, the
    query views cannot decide which entity type to instantiate from the
    stored data — the CASE reasoning of Section 1.1 has no sound branch.
    Cells pinning different constants for the same unmapped attribute stay
    distinguishable through their conditions, so only cells with equal
    signatures *and* equal conditions collide.
    """
    seen: Dict[FrozenSet[int], TypeCell] = {}
    for cell in analysis.all_cells():
        if not cell.signature:
            # entities matching no fragment are not stored at all; coverage
            # rejects them when they have attributes, and empty-attribute
            # types cannot exist (keys are attributes).
            raise ValidationError(
                f"entities of type {cell.concrete_type!r} matching no fragment "
                f"cannot be stored (cell {cell.condition})",
                check="coverage",
            )
        other = seen.get(cell.signature)
        if other is not None and other.concrete_type != cell.concrete_type:
            raise ValidationError(
                "ambiguous mapping: types "
                f"{other.concrete_type!r} and {cell.concrete_type!r} activate the "
                f"same fragments {sorted(cell.signature)} and cannot be told apart "
                "when reading the store",
                check="disambiguation",
            )
        if other is None:
            seen[cell.signature] = cell
