"""The full mapping compiler — the baseline the paper speeds up.

``compile_mapping`` performs the whole pipeline of Section 2.2: analyse
fragments, generate query and update views, and validate roundtripping.
Its cost grows with schema size and, exponentially, with mapping
complexity (fragments per table / associations per table), reproducing
the compilation-time behaviour of Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.budget import WorkBudget
from repro.compiler.analysis import SetAnalysis
from repro.compiler.validation import ValidationReport, validate_mapping
from repro.compiler.viewgen import generate_views
from repro.containment.cache import ValidationCache
from repro.mapping.fragments import Mapping
from repro.mapping.views import CompiledViews


@dataclass
class CompilationResult:
    """Views plus bookkeeping from one full compilation."""

    mapping: Mapping
    views: CompiledViews
    report: Optional[ValidationReport]
    elapsed: float

    def __str__(self) -> str:
        validated = str(self.report) if self.report else "not validated"
        return f"CompilationResult({self.elapsed:.3f}s, {validated})"


def compile_mapping(
    mapping: Mapping,
    budget: Optional[WorkBudget] = None,
    validate: bool = True,
    optimize: bool = False,
    *,
    workers: int = 1,
    executor: Optional[str] = None,
    cache: Optional[ValidationCache] = None,
) -> CompilationResult:
    """Compile *mapping* into query and update views.

    With ``validate=True`` (the default, as in Entity Framework) the
    mapping is checked for roundtripping; a ``ValidationError`` aborts the
    compilation.  ``validate=False`` generates views only — used by the
    view-reuse ablation benchmark.  ``optimize=True`` additionally rewrites
    the query views into the cheaper LOJ/UNION ALL shapes (Section 6).
    ``workers``/``executor``/``cache`` configure the validation scheduler
    and memo (see :func:`repro.compiler.validation.validate_mapping`).
    """
    started = time.perf_counter()
    mapping.check_well_formed()
    analyses: Dict[str, SetAnalysis] = {}
    views = generate_views(mapping, budget)
    report: Optional[ValidationReport] = None
    if validate:
        report = validate_mapping(
            mapping,
            views,
            budget,
            analyses,
            workers=workers,
            executor=executor,
            cache=cache,
        )
    if optimize:
        from repro.compiler.optimize import optimize_views

        views = optimize_views(mapping, views, budget)
    return CompilationResult(
        mapping=mapping,
        views=views,
        report=report,
        elapsed=time.perf_counter() - started,
    )
