"""Full-mapping validation — our re-derivation of Algorithm 1 of [13].

The five steps the paper enumerates in Section 1.2:

1. the left sides of the fragments are one-to-one (structural
   well-formedness, :meth:`Mapping.check_well_formed`);
2-4. the update views preserve store integrity constraints — here:
   per-type coverage, cell disambiguation, store-cell achievability, and
   one containment check per foreign key between mapped tables;
5. the composition of update and query views is the identity — checked on
   canonical client states via the roundtrip oracle.

Steps 3-5 are the exponential work the incremental compiler avoids: store
cell enumeration is exponential in the number of independent store
conditions per table (the hub-and-rim blow-up of Figure 4), and each
containment / roundtrip check enumerates canonical states.

The steps decompose into independent per-set / per-table / per-foreign-key
check units, declared through :func:`build_validation_checks` and executed
by :class:`repro.compiler.scheduler.ValidationScheduler` — serially by
default (bit-for-bit the behaviour of the historical sequential loop), or
concurrently with ``workers > 1``.  Every check unit can additionally be
memoised in a :class:`~repro.containment.cache.ValidationCache` keyed by
structural fingerprints of exactly the inputs it reads, which makes
re-validation after an SMO that left a neighborhood untouched a cache hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.conditions import IsNotNull, and_
from repro.algebra.queries import ProjItem, Project, Query, Select, Col
from repro.budget import WorkBudget, ensure_budget
from repro.compiler.analysis import SetAnalysis, check_coverage, check_disambiguation
from repro.compiler.scheduler import ValidationCheck, ValidationScheduler
from repro.compiler.viewgen import _produced_columns
from repro.containment.cache import (
    ValidationCache,
    client_slice_tokens,
    fingerprint,
    store_table_tokens,
)
from repro.containment.checker import (
    _rebuild_state as _rebuild_counterexample,
    canonical_client_states,
    check_containment,
)
from repro.containment.spaces import StoreConditionSpace
from repro.errors import ValidationError
from repro.mapping.fragments import Mapping, MappingFragment
from repro.mapping.roundtrip import check_roundtrip
from repro.mapping.views import CompiledViews


@dataclass
class ValidationReport:
    """What a full validation did: counters for each class of work."""

    coverage_checks: int = 0
    store_cells: int = 0
    containment_checks: int = 0
    roundtrip_states: int = 0
    elapsed: float = 0.0
    workers: int = 1
    executor: str = "serial"
    cache_hits: int = 0
    cache_misses: int = 0
    #: L1 misses served from the persistent (cross-process) cache store
    l2_hits: int = 0
    #: misses that fell all the way through to a real compute
    l2_misses: int = 0
    #: containment checks settled purely by branch subsumption (0 states)
    symbolic_discharged: int = 0
    #: Q1 branches covered by an implied Q2 branch across all containments
    branches_discharged: int = 0
    #: Q1 branches dropped as unsatisfiable before any enumeration
    branches_pruned: int = 0
    #: persisted counterexample states screened before fresh enumeration
    counterexample_replays: int = 0
    #: canonical states actually enumerated by containment checks
    containment_states: int = 0
    check_timings: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "ValidationReport") -> None:
        self.coverage_checks += other.coverage_checks
        self.store_cells += other.store_cells
        self.containment_checks += other.containment_checks
        self.roundtrip_states += other.roundtrip_states
        self.elapsed += other.elapsed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.symbolic_discharged += other.symbolic_discharged
        self.branches_discharged += other.branches_discharged
        self.branches_pruned += other.branches_pruned
        self.counterexample_replays += other.counterexample_replays
        self.containment_states += other.containment_states
        self.check_timings.update(other.check_timings)

    def apply_counters(self, counters: Dict[str, int]) -> None:
        """Accumulate one check's counters (keys match field names)."""
        for name, value in counters.items():
            setattr(self, name, getattr(self, name) + value)

    def __str__(self) -> str:
        text = (
            f"ValidationReport(coverage={self.coverage_checks}, "
            f"cells={self.store_cells}, containments={self.containment_checks}, "
            f"roundtrip_states={self.roundtrip_states}, elapsed={self.elapsed:.3f}s"
        )
        if self.workers != 1 or self.executor != "serial":
            text += f", workers={self.workers}, executor={self.executor}"
        if self.cache_hits or self.cache_misses:
            text += f", cache={self.cache_hits}h/{self.cache_misses}m"
        if self.l2_hits or self.l2_misses:
            text += f", l2={self.l2_hits}h/{self.l2_misses}m"
        if self.symbolic_discharged or self.branches_discharged or self.branches_pruned:
            text += (
                f", symbolic={self.symbolic_discharged}/{self.containment_checks}"
                f" (branches {self.branches_discharged}+{self.branches_pruned}p,"
                f" {self.containment_states} states)"
            )
        if self.counterexample_replays:
            text += f", replays={self.counterexample_replays}"
        return text + ")"


def validate_mapping(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    analyses: Optional[Dict[str, SetAnalysis]] = None,
    *,
    workers: int = 1,
    executor: Optional[str] = None,
    cache: Optional[ValidationCache] = None,
    symbolic: bool = True,
    shard_size: Optional[int] = None,
) -> ValidationReport:
    """Run all five validation steps; raise ValidationError on failure.

    ``workers``/``executor`` select how the independent check units run
    (see :class:`~repro.compiler.scheduler.ValidationScheduler`); the
    default serial path is behaviour-identical to the historical
    sequential loop.  ``cache`` memoises check units and their containment
    / cell-enumeration subproblems across validations.  ``symbolic``
    enables the layered containment fast path (subsumption before state
    enumeration, counterexample replay); ``symbolic=False`` restores the
    pure enumerator baseline with identical verdicts.
    """
    budget = ensure_budget(budget)
    report = ValidationReport()
    started = time.perf_counter()
    counters_before = _cache_counters(cache)

    # Step 1: structural well-formedness (cheap, always in-process).
    mapping.check_well_formed()

    if analyses is None:
        analyses = {}

    # Steps 2-5 as a DAG of independent check units.
    checks = build_validation_checks(
        mapping, views, budget, analyses, cache, symbolic=symbolic
    )
    scheduler = ValidationScheduler(
        workers=workers, executor=executor, shard_size=shard_size
    )
    results = scheduler.run(
        checks, mapping, views, budget, symbolic=symbolic, cache=cache
    )

    for result in results:
        report.apply_counters(result.counters)
        report.check_timings[result.name] = result.elapsed

    report.workers = scheduler.workers
    report.executor = scheduler.executor
    _apply_cache_counters(report, cache, counters_before)
    report.elapsed = time.perf_counter() - started
    return report


def _cache_counters(cache: Optional[ValidationCache]) -> Tuple[int, int, int, int]:
    if cache is None:
        return (0, 0, 0, 0)
    return (cache.hits, cache.misses, cache.l2_hits, cache.l2_misses)


def _apply_cache_counters(
    report: ValidationReport,
    cache: Optional[ValidationCache],
    before: Tuple[int, int, int, int],
) -> None:
    if cache is None:
        return
    report.cache_hits = cache.hits - before[0]
    report.cache_misses = cache.misses - before[1]
    report.l2_hits = cache.l2_hits - before[2]
    report.l2_misses = cache.l2_misses - before[3]


def validate_delta_neighborhood(
    mapping: Mapping,
    views: CompiledViews,
    neighborhood,
    budget: Optional[WorkBudget] = None,
    *,
    workers: int = 1,
    executor: Optional[str] = None,
    cache: Optional[ValidationCache] = None,
    symbolic: bool = True,
    shard_size: Optional[int] = None,
) -> Tuple[ValidationReport, List[str]]:
    """Validate only a delta's touched neighborhood (steps 2-5, scoped).

    ``neighborhood`` is a :class:`~repro.incremental.delta.Neighborhood`
    (anything with ``sets``/``tables`` works).  The same check units as
    :func:`validate_mapping` are generated, restricted to the touched
    entity sets and tables, and run through the scheduler — this is the
    single validation pass a batched evolution pays for its composed
    delta.  Returns the report plus the names of the checks that ran.
    """
    budget = ensure_budget(budget)
    report = ValidationReport()
    started = time.perf_counter()
    counters_before = _cache_counters(cache)

    mapping.check_well_formed()

    checks = build_validation_checks(
        mapping,
        views,
        budget,
        {},
        cache,
        sets=tuple(neighborhood.sets),
        tables=tuple(neighborhood.tables),
        symbolic=symbolic,
    )
    scheduler = ValidationScheduler(
        workers=workers, executor=executor, shard_size=shard_size
    )
    results = scheduler.run(
        checks, mapping, views, budget, symbolic=symbolic, cache=cache
    )

    for result in results:
        report.apply_counters(result.counters)
        report.check_timings[result.name] = result.elapsed

    report.workers = scheduler.workers
    report.executor = scheduler.executor
    _apply_cache_counters(report, cache, counters_before)
    report.elapsed = time.perf_counter() - started
    return report, [check.name for check in checks]


def build_validation_checks(
    mapping: Mapping,
    views: CompiledViews,
    budget: WorkBudget,
    analyses: Dict[str, SetAnalysis],
    cache: Optional[ValidationCache] = None,
    *,
    sets: Optional[Sequence[str]] = None,
    tables: Optional[Sequence[str]] = None,
    symbolic: bool = True,
) -> List[ValidationCheck]:
    """Declare validation steps 2-5 as schedulable check units.

    Declaration order is exactly the historical sequential order, so the
    serial executor reproduces the pre-scheduler behaviour tick for tick:
    coverage per entity set, store cells per mapped table, one containment
    per foreign key, one roundtrip batch per entity set.

    ``sets``/``tables`` scope the check DAG to a delta's touched
    neighborhood (both default to everything the mapping mentions);
    unmapped names in either are silently dropped, so callers can pass a
    :class:`~repro.incremental.delta.Neighborhood` verbatim.
    """
    checks: List[ValidationCheck] = []

    # Step 2: per-set coverage and disambiguation.
    if sets is None:
        mapped_sets = [
            entity_set.name
            for entity_set in mapping.client_schema.entity_sets
            if mapping.fragments_for_set(entity_set.name)
        ]
    else:
        mapped_sets = [
            set_name for set_name in sets if mapping.fragments_for_set(set_name)
        ]
    if tables is None:
        mapped_tables: Tuple[str, ...] = tuple(mapping.mapped_tables())
    else:
        mapped_tables = tuple(
            table_name for table_name in tables if mapping.table_is_mapped(table_name)
        )
    for set_name in mapped_sets:
        checks.append(
            ValidationCheck(
                name=f"coverage:{set_name}",
                kind="coverage",
                run=_coverage_runner(mapping, set_name, analyses, budget, cache),
                spec=("coverage", set_name),
            )
        )

    # Step 3: store-cell reasoning per table.  Reads the set analyses the
    # coverage checks build, so depend on them (shared dict in thread mode).
    for table_name in mapped_tables:
        table_sets = {
            fragment.client_source
            for fragment in mapping.fragments_for_table(table_name)
            if not fragment.is_association
        }
        deps = tuple(
            f"coverage:{set_name}"
            for set_name in mapped_sets
            if set_name in table_sets
        )
        checks.append(
            ValidationCheck(
                name=f"store-cells:{table_name}",
                kind="store-cells",
                run=_store_cells_runner(mapping, table_name, analyses, budget, cache),
                deps=deps,
                spec=("store-cells", table_name),
            )
        )

    # Step 4: foreign-key preservation, one check per foreign key.
    for table_name in mapped_tables:
        table = mapping.store_schema.table(table_name)
        for index, foreign_key in enumerate(table.foreign_keys):
            checks.append(
                ValidationCheck(
                    name=f"fk:{table_name}:{index}",
                    kind="fk-preservation",
                    run=_fk_runner(
                        mapping, views, table_name, foreign_key, budget, cache, symbolic
                    ),
                    spec=("fk-preservation", table_name, index),
                )
            )

    # Step 5: roundtrip identity, one batch per entity-set neighborhood.
    for set_name in mapped_sets:
        checks.append(
            ValidationCheck(
                name=f"roundtrip:{set_name}",
                kind="roundtrip",
                run=_roundtrip_runner(mapping, views, set_name, budget, cache),
                spec=("roundtrip", set_name),
            )
        )
    return checks


def _coverage_runner(mapping, set_name, analyses, budget, cache):
    return lambda: run_coverage_check(mapping, set_name, analyses, budget, cache)


def _store_cells_runner(mapping, table_name, analyses, budget, cache):
    return lambda: {
        "store_cells": check_store_cells(mapping, table_name, analyses, budget, cache)
    }


def _fk_runner(mapping, views, table_name, foreign_key, budget, cache, symbolic):
    return lambda: check_foreign_key_preserved(
        mapping, views, table_name, foreign_key, budget, cache, symbolic=symbolic
    )


def _roundtrip_runner(mapping, views, set_name, budget, cache):
    def run() -> Dict[str, int]:
        counters: Dict[str, int] = {}
        counters["roundtrip_states"] = roundtrip_spotcheck(
            mapping, views, budget, set_names=[set_name], cache=cache,
            counters=counters,
        )
        return counters

    return run


# ---------------------------------------------------------------------------
# Step 2: coverage and disambiguation
# ---------------------------------------------------------------------------

def run_coverage_check(
    mapping: Mapping,
    set_name: str,
    analyses: Dict[str, SetAnalysis],
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
) -> Dict[str, int]:
    """Coverage + disambiguation for one entity set; returns its counters.

    Memoised under the set's fragments and client-schema neighborhood: any
    SMO touching either changes the fingerprint and forces a re-check.
    """

    def compute() -> Dict[str, int]:
        analysis = analyses.get(set_name)
        if analysis is None:
            analysis = SetAnalysis(mapping, set_name, budget, cache)
            analyses[set_name] = analysis
        check_coverage(analysis)
        check_disambiguation(analysis)
        return {"coverage_checks": len(analysis.all_cells())}

    if cache is None:
        return compute()
    key = fingerprint(
        "coverage-check",
        set_name,
        mapping.fragments_for_set(set_name),
        client_slice_tokens(mapping.client_schema, sets=[set_name]),
    )
    return dict(cache.get_or_compute("validation-check", key, compute))


# ---------------------------------------------------------------------------
# Step 3: store cells
# ---------------------------------------------------------------------------

def check_store_cells(
    mapping: Mapping,
    table_name: str,
    analyses: Dict[str, SetAnalysis],
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
) -> int:
    """Enumerate the achievable store cells of *table_name* and check that
    every client cell projects onto an achievable store cell.

    The cell count is exponential in the number of independent store
    conditions on the table (e.g. nullable foreign-key columns used by
    association fragments) — the full compiler's case-reasoning cost.
    """
    if cache is None:
        return _check_store_cells(mapping, table_name, analyses, budget, cache)
    sets = sorted(
        {
            fragment.client_source
            for fragment in mapping.fragments_for_table(table_name)
            if not fragment.is_association
        }
    )
    key = fingerprint(
        "store-cells",
        store_table_tokens(mapping.store_schema, table_name),
        mapping.fragments_for_table(table_name),
        tuple(mapping.fragments_for_set(set_name) for set_name in sets),
        client_slice_tokens(mapping.client_schema, sets=sets),
    )
    return cache.get_or_compute(
        "validation-check",
        key,
        lambda: _check_store_cells(mapping, table_name, analyses, budget, cache),
    )


def _check_store_cells(
    mapping: Mapping,
    table_name: str,
    analyses: Dict[str, SetAnalysis],
    budget: Optional[WorkBudget],
    cache: Optional[ValidationCache],
) -> int:
    fragments = mapping.fragments_for_table(table_name)
    conditions = [f.store_condition for f in fragments]
    space = StoreConditionSpace(mapping.store_schema, table_name, conditions)
    vectors = space.truth_vectors(conditions, budget, cache)

    # Positions of each set's entity fragments within the table fragments.
    by_set: Dict[str, List[Tuple[int, MappingFragment]]] = {}
    for position, fragment in enumerate(fragments):
        if not fragment.is_association:
            by_set.setdefault(fragment.client_source, []).append((position, fragment))

    for set_name, positioned in by_set.items():
        analysis = analyses.get(set_name)
        if analysis is None:
            analysis = SetAnalysis(mapping, set_name, budget, cache)
            analyses[set_name] = analysis
        # position of each per-set fragment index within this table
        table_position: Dict[int, int] = {}
        for set_index, set_fragment in enumerate(analysis.fragments):
            for position, table_fragment in enumerate(fragments):
                if set_fragment is table_fragment:
                    table_position[set_index] = position
        for cell in analysis.all_cells():
            constrained: Dict[int, bool] = {}
            for set_index, position in table_position.items():
                constrained[position] = set_index in cell.signature
            if not any(constrained.values()):
                continue  # this cell stores nothing in this table
            achievable = any(
                all(vector[pos] == bit for pos, bit in constrained.items())
                for vector in vectors
            )
            if not achievable:
                raise ValidationError(
                    f"client cell of {cell.concrete_type!r} requires a row pattern "
                    f"in table {table_name!r} that no store state can exhibit",
                    check="store-cells",
                )
    return len(vectors)


# ---------------------------------------------------------------------------
# Step 4: foreign keys
# ---------------------------------------------------------------------------

def check_all_foreign_keys(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    tables: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
    symbolic: bool = True,
) -> int:
    """One containment check per foreign key of every (selected) mapped table."""
    checks = 0
    table_names = tuple(tables) if tables is not None else mapping.mapped_tables()
    for table_name in table_names:
        table = mapping.store_schema.table(table_name)
        for foreign_key in table.foreign_keys:
            check_foreign_key_preserved(
                mapping, views, table_name, foreign_key, budget, cache,
                symbolic=symbolic,
            )
            checks += 1
    return checks


def check_foreign_key_preserved(
    mapping: Mapping,
    views: CompiledViews,
    table_name: str,
    foreign_key,
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
    *,
    symbolic: bool = True,
) -> Dict[str, int]:
    """Check ``π_β(Q_T) ⊆ π_γ(Q_S)`` on non-null β values (Section 1.1).

    Returns the check's :class:`ValidationReport` counters: always
    ``containment_checks: 1`` plus the symbolic-layer statistics of the
    underlying :func:`~repro.containment.checker.check_containment`.
    """
    update_view = views.update_view(table_name)
    produced = set(_produced_columns(update_view.query))
    if not set(foreign_key.columns) <= produced:
        # β columns are always NULL: the constraint holds vacuously
        return {"containment_checks": 1}

    not_null = and_(*[IsNotNull(column) for column in foreign_key.columns])
    lhs: Query = Project(
        Select(update_view.query, not_null),
        tuple(
            ProjItem(gamma, Col(beta))
            for beta, gamma in zip(foreign_key.columns, foreign_key.ref_columns)
        ),
    )

    if not mapping.table_is_mapped(foreign_key.ref_table):
        raise ValidationError(
            f"foreign key {foreign_key} of {table_name!r} references the unmapped "
            f"table {foreign_key.ref_table!r}; update views can never populate it",
            check="fk-preservation",
        )
    target_view = views.update_view(foreign_key.ref_table)
    rhs: Query = Project(
        target_view.query,
        tuple(ProjItem(gamma, Col(gamma)) for gamma in foreign_key.ref_columns),
    )

    result = check_containment(
        lhs, rhs, mapping.client_schema, budget, cache, symbolic=symbolic
    )
    if not result.holds:
        raise ValidationError(
            f"update views violate foreign key {foreign_key} of table "
            f"{table_name!r}:\n{result.explain()}",
            check="fk-preservation",
        )
    return {
        "containment_checks": 1,
        "symbolic_discharged": 1 if result.discharged else 0,
        "branches_discharged": result.branches_discharged,
        "branches_pruned": result.branches_pruned,
        "counterexample_replays": result.replayed,
        "containment_states": result.states_checked,
    }


# ---------------------------------------------------------------------------
# Step 5: roundtrip identity
# ---------------------------------------------------------------------------

def roundtrip_spotcheck(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    set_names: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
    counters: Optional[Dict[str, int]] = None,
) -> int:
    """Check ``Q(V(c)) = c`` on canonical states, one neighborhood at a time.

    For each entity set, canonical states populate the set, the association
    sets touching it, and their other endpoints; only the update views of
    tables reachable through fragments and foreign keys are applied, so the
    cost is local to the neighborhood times the (possibly exponential)
    number of canonical states.  When *counters* is given, the number of
    persisted failing states replayed first is accumulated into its
    ``counterexample_replays`` entry.
    """
    budget = ensure_budget(budget)
    schema = mapping.client_schema
    states_checked = 0
    names = set_names if set_names is not None else [
        s.name for s in schema.entity_sets if mapping.fragments_for_set(s.name)
    ]
    for set_name in names:
        states_checked += _roundtrip_one_neighborhood(
            mapping, views, set_name, budget, cache, counters
        )
    return states_checked


def _roundtrip_one_neighborhood(
    mapping: Mapping,
    views: CompiledViews,
    set_name: str,
    budget: WorkBudget,
    cache: Optional[ValidationCache],
    counters: Optional[Dict[str, int]] = None,
) -> int:
    """Roundtrip the canonical states of one entity-set neighborhood.

    Memoised under everything the check reads: the neighborhood's schema
    slice, the fragment conditions seeding the canonical states, the query
    / association / update views applied, and the store tables whose
    constraints :func:`check_roundtrip` enforces.  A state that failed the
    roundtrip before is persisted in the cache under this check's key and
    replayed *first* on re-validation, so a still-broken neighborhood
    fails in O(1) states instead of re-enumerating (the cache's rollback
    evicts the memoised result after an aborted SMO, but never the
    counterexample pool).
    """
    schema = mapping.client_schema
    sets, assocs = _neighborhood_sources(mapping, set_name)
    relevant = _relevant_views(mapping, views, sets, assocs)
    conditions = [
        f.client_condition
        for name in sets
        for f in mapping.fragments_for_set(name)
    ]
    key: Optional[str] = None
    if cache is not None:
        key = fingerprint(
            "roundtrip",
            set_name,
            tuple(sets),
            tuple(assocs),
            client_slice_tokens(schema, sets=sets, assocs=assocs),
            tuple(conditions),
            tuple(sorted(relevant.query_views.items())),
            tuple(sorted(relevant.association_views.items())),
            tuple(sorted(relevant.update_views.items())),
            tuple(
                store_table_tokens(mapping.store_schema, table_name)
                for table_name in sorted(relevant.update_views)
            ),
        )

    def fail(state, outcome) -> None:
        if cache is not None and key is not None:
            cache.record_counterexample(key, sets, assocs, state)
        raise ValidationError(
            f"mapping does not roundtrip (neighborhood of {set_name!r}):\n"
            f"{outcome}",
            check="roundtrip",
        )

    def compute() -> int:
        # Replay persisted failing states first (per-key pool only: a
        # state from another neighborhood could populate sets this check
        # has no views for, and would mis-roundtrip vacuously).
        if cache is not None and key is not None:
            for sets_r, assocs_r, state in cache.counterexamples(
                key, include_recent=False
            ):
                rebuilt = _rebuild_counterexample(schema, sets_r, assocs_r, state)
                if rebuilt is None:
                    continue
                if counters is not None:
                    counters["counterexample_replays"] = (
                        counters.get("counterexample_replays", 0) + 1
                    )
                outcome = check_roundtrip(relevant, rebuilt, mapping.store_schema)
                if not outcome.ok:
                    fail(rebuilt, outcome)
        states_checked = 0
        for state in canonical_client_states(schema, sets, assocs, conditions, budget):
            states_checked += 1
            outcome = check_roundtrip(relevant, state, mapping.store_schema)
            if not outcome.ok:
                fail(state, outcome)
        return states_checked

    if cache is None:
        return compute()
    return cache.get_or_compute("validation-check", key, compute)


def _neighborhood_sources(
    mapping: Mapping, set_name: str
) -> Tuple[List[str], List[str]]:
    schema = mapping.client_schema
    sets = [set_name]
    assocs: List[str] = []
    for association in schema.associations:
        if mapping.fragment_for_association(association.name) is None:
            continue
        if set_name in (association.entity_set1, association.entity_set2):
            assocs.append(association.name)
            for other in (association.entity_set1, association.entity_set2):
                if other not in sets:
                    sets.append(other)
    return sets, assocs


def _relevant_views(
    mapping: Mapping,
    views: CompiledViews,
    sets: Sequence[str],
    assocs: Sequence[str],
) -> CompiledViews:
    """Views needed to roundtrip a state populating only *sets*/*assocs*:
    tables of their fragments, closed under foreign-key references."""
    tables: Set[str] = set()
    for set_name in sets:
        for fragment in mapping.fragments_for_set(set_name):
            tables.add(fragment.store_table)
    for assoc_name in assocs:
        fragment = mapping.fragment_for_association(assoc_name)
        if fragment is not None:
            tables.add(fragment.store_table)
    # One FK hop so constraint checking has its targets populated.
    # (No transitive closure: rows outside the neighborhood's tables can
    # only carry NULL foreign keys, which are vacuously satisfied.)
    for table_name in list(tables):
        for foreign_key in mapping.store_schema.table(table_name).foreign_keys:
            target = foreign_key.ref_table
            if mapping.table_is_mapped(target):
                tables.add(target)

    schema = mapping.client_schema
    relevant = CompiledViews()
    for set_name in sets:
        root = schema.entity_set(set_name).root_type
        if root in views.query_views:
            relevant.set_query_view(views.query_views[root])
    for assoc_name in assocs:
        if assoc_name in views.association_views:
            relevant.set_association_view(views.association_views[assoc_name])
    for table_name in tables:
        if views.has_update_view(table_name):
            relevant.set_update_view(views.update_view(table_name))
    return relevant
