"""Full-mapping validation — our re-derivation of Algorithm 1 of [13].

The five steps the paper enumerates in Section 1.2:

1. the left sides of the fragments are one-to-one (structural
   well-formedness, :meth:`Mapping.check_well_formed`);
2-4. the update views preserve store integrity constraints — here:
   per-type coverage, cell disambiguation, store-cell achievability, and
   one containment check per foreign key between mapped tables;
5. the composition of update and query views is the identity — checked on
   canonical client states via the roundtrip oracle.

Steps 3-5 are the exponential work the incremental compiler avoids: store
cell enumeration is exponential in the number of independent store
conditions per table (the hub-and-rim blow-up of Figure 4), and each
containment / roundtrip check enumerates canonical states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.conditions import IsNotNull, and_
from repro.algebra.queries import ProjItem, Project, Query, Select, Col
from repro.budget import WorkBudget, ensure_budget
from repro.compiler.analysis import SetAnalysis, check_coverage, check_disambiguation
from repro.compiler.viewgen import _produced_columns
from repro.containment.checker import (
    canonical_client_states,
    check_containment,
)
from repro.containment.spaces import StoreConditionSpace
from repro.errors import ValidationError
from repro.mapping.fragments import Mapping, MappingFragment
from repro.mapping.roundtrip import check_roundtrip
from repro.mapping.views import CompiledViews


@dataclass
class ValidationReport:
    """What a full validation did: counters for each class of work."""

    coverage_checks: int = 0
    store_cells: int = 0
    containment_checks: int = 0
    roundtrip_states: int = 0
    elapsed: float = 0.0

    def merge(self, other: "ValidationReport") -> None:
        self.coverage_checks += other.coverage_checks
        self.store_cells += other.store_cells
        self.containment_checks += other.containment_checks
        self.roundtrip_states += other.roundtrip_states
        self.elapsed += other.elapsed

    def __str__(self) -> str:
        return (
            f"ValidationReport(coverage={self.coverage_checks}, "
            f"cells={self.store_cells}, containments={self.containment_checks}, "
            f"roundtrip_states={self.roundtrip_states}, elapsed={self.elapsed:.3f}s)"
        )


def validate_mapping(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    analyses: Optional[Dict[str, SetAnalysis]] = None,
) -> ValidationReport:
    """Run all five validation steps; raise ValidationError on failure."""
    budget = ensure_budget(budget)
    report = ValidationReport()
    started = time.perf_counter()

    # Step 1: structural well-formedness.
    mapping.check_well_formed()

    # Step 2: per-set coverage and disambiguation.
    if analyses is None:
        analyses = {}
    for entity_set in mapping.client_schema.entity_sets:
        if not mapping.fragments_for_set(entity_set.name):
            continue
        analysis = analyses.get(entity_set.name)
        if analysis is None:
            analysis = SetAnalysis(mapping, entity_set.name, budget)
            analyses[entity_set.name] = analysis
        check_coverage(analysis)
        check_disambiguation(analysis)
        report.coverage_checks += len(analysis.all_cells())

    # Step 3: store-cell reasoning per table.
    for table_name in mapping.mapped_tables():
        report.store_cells += check_store_cells(mapping, table_name, analyses, budget)

    # Step 4: foreign-key preservation.
    report.containment_checks += check_all_foreign_keys(mapping, views, budget)

    # Step 5: roundtrip identity on canonical states.
    report.roundtrip_states += roundtrip_spotcheck(mapping, views, budget)

    report.elapsed = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# Step 3: store cells
# ---------------------------------------------------------------------------

def check_store_cells(
    mapping: Mapping,
    table_name: str,
    analyses: Dict[str, SetAnalysis],
    budget: Optional[WorkBudget] = None,
) -> int:
    """Enumerate the achievable store cells of *table_name* and check that
    every client cell projects onto an achievable store cell.

    The cell count is exponential in the number of independent store
    conditions on the table (e.g. nullable foreign-key columns used by
    association fragments) — the full compiler's case-reasoning cost.
    """
    fragments = mapping.fragments_for_table(table_name)
    conditions = [f.store_condition for f in fragments]
    space = StoreConditionSpace(mapping.store_schema, table_name, conditions)
    vectors = space.truth_vectors(conditions, budget)

    # Positions of each set's entity fragments within the table fragments.
    by_set: Dict[str, List[Tuple[int, MappingFragment]]] = {}
    for position, fragment in enumerate(fragments):
        if not fragment.is_association:
            by_set.setdefault(fragment.client_source, []).append((position, fragment))

    for set_name, positioned in by_set.items():
        analysis = analyses.get(set_name)
        if analysis is None:
            analysis = SetAnalysis(mapping, set_name, budget)
            analyses[set_name] = analysis
        # position of each per-set fragment index within this table
        table_position: Dict[int, int] = {}
        for set_index, set_fragment in enumerate(analysis.fragments):
            for position, table_fragment in enumerate(fragments):
                if set_fragment is table_fragment:
                    table_position[set_index] = position
        for cell in analysis.all_cells():
            constrained: Dict[int, bool] = {}
            for set_index, position in table_position.items():
                constrained[position] = set_index in cell.signature
            if not any(constrained.values()):
                continue  # this cell stores nothing in this table
            achievable = any(
                all(vector[pos] == bit for pos, bit in constrained.items())
                for vector in vectors
            )
            if not achievable:
                raise ValidationError(
                    f"client cell of {cell.concrete_type!r} requires a row pattern "
                    f"in table {table_name!r} that no store state can exhibit",
                    check="store-cells",
                )
    return len(vectors)


# ---------------------------------------------------------------------------
# Step 4: foreign keys
# ---------------------------------------------------------------------------

def check_all_foreign_keys(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    tables: Optional[Sequence[str]] = None,
) -> int:
    """One containment check per foreign key of every (selected) mapped table."""
    checks = 0
    table_names = tuple(tables) if tables is not None else mapping.mapped_tables()
    for table_name in table_names:
        table = mapping.store_schema.table(table_name)
        for foreign_key in table.foreign_keys:
            check_foreign_key_preserved(
                mapping, views, table_name, foreign_key, budget
            )
            checks += 1
    return checks


def check_foreign_key_preserved(
    mapping: Mapping,
    views: CompiledViews,
    table_name: str,
    foreign_key,
    budget: Optional[WorkBudget] = None,
) -> None:
    """Check ``π_β(Q_T) ⊆ π_γ(Q_S)`` on non-null β values (Section 1.1)."""
    update_view = views.update_view(table_name)
    produced = set(_produced_columns(update_view.query))
    if not set(foreign_key.columns) <= produced:
        return  # β columns are always NULL: the constraint holds vacuously

    not_null = and_(*[IsNotNull(column) for column in foreign_key.columns])
    lhs: Query = Project(
        Select(update_view.query, not_null),
        tuple(
            ProjItem(gamma, Col(beta))
            for beta, gamma in zip(foreign_key.columns, foreign_key.ref_columns)
        ),
    )

    if not mapping.table_is_mapped(foreign_key.ref_table):
        raise ValidationError(
            f"foreign key {foreign_key} of {table_name!r} references the unmapped "
            f"table {foreign_key.ref_table!r}; update views can never populate it",
            check="fk-preservation",
        )
    target_view = views.update_view(foreign_key.ref_table)
    rhs: Query = Project(
        target_view.query,
        tuple(ProjItem(gamma, Col(gamma)) for gamma in foreign_key.ref_columns),
    )

    result = check_containment(lhs, rhs, mapping.client_schema, budget)
    if not result.holds:
        raise ValidationError(
            f"update views violate foreign key {foreign_key} of table "
            f"{table_name!r}:\n{result.explain()}",
            check="fk-preservation",
        )


# ---------------------------------------------------------------------------
# Step 5: roundtrip identity
# ---------------------------------------------------------------------------

def roundtrip_spotcheck(
    mapping: Mapping,
    views: CompiledViews,
    budget: Optional[WorkBudget] = None,
    set_names: Optional[Sequence[str]] = None,
) -> int:
    """Check ``Q(V(c)) = c`` on canonical states, one neighborhood at a time.

    For each entity set, canonical states populate the set, the association
    sets touching it, and their other endpoints; only the update views of
    tables reachable through fragments and foreign keys are applied, so the
    cost is local to the neighborhood times the (possibly exponential)
    number of canonical states.
    """
    budget = ensure_budget(budget)
    schema = mapping.client_schema
    states_checked = 0
    names = set_names if set_names is not None else [
        s.name for s in schema.entity_sets if mapping.fragments_for_set(s.name)
    ]
    for set_name in names:
        sets, assocs = _neighborhood_sources(mapping, set_name)
        relevant = _relevant_views(mapping, views, sets, assocs)
        conditions = [
            f.client_condition
            for name in sets
            for f in mapping.fragments_for_set(name)
        ]
        for state in canonical_client_states(schema, sets, assocs, conditions, budget):
            states_checked += 1
            outcome = check_roundtrip(relevant, state, mapping.store_schema)
            if not outcome.ok:
                raise ValidationError(
                    f"mapping does not roundtrip (neighborhood of {set_name!r}):\n"
                    f"{outcome}",
                    check="roundtrip",
                )
    return states_checked


def _neighborhood_sources(
    mapping: Mapping, set_name: str
) -> Tuple[List[str], List[str]]:
    schema = mapping.client_schema
    sets = [set_name]
    assocs: List[str] = []
    for association in schema.associations:
        if mapping.fragment_for_association(association.name) is None:
            continue
        if set_name in (association.entity_set1, association.entity_set2):
            assocs.append(association.name)
            for other in (association.entity_set1, association.entity_set2):
                if other not in sets:
                    sets.append(other)
    return sets, assocs


def _relevant_views(
    mapping: Mapping,
    views: CompiledViews,
    sets: Sequence[str],
    assocs: Sequence[str],
) -> CompiledViews:
    """Views needed to roundtrip a state populating only *sets*/*assocs*:
    tables of their fragments, closed under foreign-key references."""
    tables: Set[str] = set()
    for set_name in sets:
        for fragment in mapping.fragments_for_set(set_name):
            tables.add(fragment.store_table)
    for assoc_name in assocs:
        fragment = mapping.fragment_for_association(assoc_name)
        if fragment is not None:
            tables.add(fragment.store_table)
    # One FK hop so constraint checking has its targets populated.
    # (No transitive closure: rows outside the neighborhood's tables can
    # only carry NULL foreign keys, which are vacuously satisfied.)
    for table_name in list(tables):
        for foreign_key in mapping.store_schema.table(table_name).foreign_keys:
            target = foreign_key.ref_table
            if mapping.table_is_mapped(target):
                tables.add(target)

    schema = mapping.client_schema
    relevant = CompiledViews()
    for set_name in sets:
        root = schema.entity_set(set_name).root_type
        if root in views.query_views:
            relevant.set_query_view(views.query_views[root])
    for assoc_name in assocs:
        if assoc_name in views.association_views:
            relevant.set_association_view(views.association_views[assoc_name])
    for table_name in tables:
        if views.has_update_view(table_name):
            relevant.set_update_view(views.update_view(table_name))
    return relevant
