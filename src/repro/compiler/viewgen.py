"""View generation for the full mapping compiler.

Re-derivation of the view-generation strategy of Melnik et al. [13] for
our fragment language:

* **Query views** — per entity set, build the full outer join of one
  *contribution* per fragment (``π_{f(α) AS α, true AS _from_i}(σ_χ(T))``),
  then a CASE constructor that decides, from the pattern of ``_from_i``
  provenance flags, which concrete type (and which condition cell of it)
  a joined row represents.  The paper's Figure 2 is the optimised shape of
  exactly this construction; Section 6 notes the full compiler can reduce
  full outer joins to left outer joins and UNION ALL — we keep the
  unoptimised FOJ form, which is semantically equivalent (our tests check
  equivalence with the incremental compiler's optimised views by
  evaluation).
* **Update views** — per table, UNION ALL of the entity-fragment
  contributions (client → store renaming, with store-condition equality
  pins materialised as constants, e.g. the TPH discriminator), left outer
  joined with one contribution per association fragment (Section 3.2.1's
  shape).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    IsNotNull,
    Not,
    TrueCond,
    and_,
    or_,
    referenced_attrs,
)
from repro.algebra.constructors import (
    AssociationCtor,
    Constructor,
    EntityCtor,
    IfCtor,
    RowCtor,
)
from repro.algebra.queries import (
    AssociationScan,
    Col,
    Const,
    FullOuterJoin,
    LeftOuterJoin,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    project_select,
    union_all,
)
from repro.budget import WorkBudget
from repro.compiler.analysis import SetAnalysis, TypeCell, is_unpinned
from repro.containment.spaces import ClientConditionSpace
from repro.errors import MappingError
from repro.mapping.fragments import Mapping, MappingFragment
from repro.mapping.views import AssociationView, CompiledViews, QueryView, UpdateView


def flag_name(index: int) -> str:
    """Provenance flag column for fragment *index* (Figure 2's ``_from1``)."""
    return f"_from{index}"


# ---------------------------------------------------------------------------
# Query views
# ---------------------------------------------------------------------------

def fragment_contribution(fragment: MappingFragment, index: int) -> Query:
    """``π_{f(α) AS α, true AS _from_i}(σ_χ(T))`` for one entity fragment."""
    items = [ProjItem(attr, Col(column)) for attr, column in fragment.attribute_map]
    items.append(ProjItem(flag_name(index), Const(True)))
    return project_select(
        TableScan(fragment.store_table), fragment.store_condition, tuple(items)
    )


def build_set_query(
    fragments: Sequence[MappingFragment], key: Sequence[str]
) -> Query:
    """Full outer join of all fragment contributions of one entity set.

    Joins are on the set's *key attributes* only; other shared client
    attributes are merged by COALESCE (a row populates them in exactly one
    contribution, or the values agree)."""
    contributions = [
        fragment_contribution(fragment, index)
        for index, fragment in enumerate(fragments)
    ]
    query = contributions[0]
    for contribution in contributions[1:]:
        query = FullOuterJoin(query, contribution, on=tuple(key))
    return query


def branch_condition(signature: frozenset, fragment_count: int) -> Condition:
    """Flag pattern identifying one (type, cell) class in the joined rows."""
    literals: List[Condition] = []
    for index in range(fragment_count):
        test = Comparison(flag_name(index), "=", True)
        literals.append(test if index in signature else Not(test))
    return and_(*literals)


def cell_constructor(analysis: SetAnalysis, cell: TypeCell) -> EntityCtor:
    """Entity constructor for one cell: mapped attributes from columns,
    condition-pinned attributes as constants."""
    assignments: List[Tuple[str, object]] = []
    for attr in analysis.schema.attribute_names_of(cell.concrete_type):
        mapped = any(attr in analysis.fragments[i].alpha for i in cell.signature)
        if mapped:
            assignments.append((attr, Col(attr)))
        else:
            pinned = analysis.pinned_value(cell, attr)
            if is_unpinned(pinned):
                raise MappingError(
                    f"attribute {attr!r} of {cell.concrete_type!r} is neither mapped "
                    "nor pinned; run validation (coverage) before view generation"
                )
            assignments.append((attr, Const(pinned)))
    return EntityCtor(cell.concrete_type, tuple(assignments))


def build_query_views_for_set(
    mapping: Mapping,
    set_name: str,
    analysis: Optional[SetAnalysis] = None,
    budget: Optional[WorkBudget] = None,
) -> Dict[str, QueryView]:
    """Query views for every entity type of *set_name*'s hierarchy."""
    schema = mapping.client_schema
    if analysis is None:
        analysis = SetAnalysis(mapping, set_name, budget)
    fragments = analysis.fragments
    if not fragments:
        return {}
    root_key = schema.key_of(schema.entity_set(set_name).root_type)
    set_query = build_set_query(fragments, root_key)

    # All (type, cell) branches in a stable order: leaf-most types first so
    # the CASE tests the most specific signature first.
    root = schema.entity_set(set_name).root_type
    ordered_types = [
        t
        for t in reversed(schema.descendants_or_self(root))
        if not schema.entity_type(t).abstract
    ]
    branches: List[Tuple[TypeCell, Condition, EntityCtor]] = []
    for type_name in ordered_types:
        for cell in analysis.cells_for_type(type_name):
            condition = branch_condition(cell.signature, len(fragments))
            branches.append((cell, condition, cell_constructor(analysis, cell)))

    views: Dict[str, QueryView] = {}
    for entity_type in schema.descendants_or_self(root):
        family = set(schema.descendants_or_self(entity_type))
        relevant = [b for b in branches if b[0].concrete_type in family]
        if not relevant:
            continue
        view_filter = or_(*[condition for _, condition, _ in relevant])
        query: Query = Select(set_query, view_filter)
        constructor: Constructor = relevant[-1][2]
        for cell, condition, ctor in reversed(relevant[:-1]):
            constructor = IfCtor(condition, ctor, constructor)
        views[entity_type] = QueryView(entity_type, query, constructor)
    return views


def build_association_view(
    mapping: Mapping, fragment: MappingFragment
) -> AssociationView:
    """``(Q_A | τ_A)`` from the association's single fragment."""
    items = tuple(ProjItem(attr, Col(column)) for attr, column in fragment.attribute_map)
    query = project_select(
        TableScan(fragment.store_table), fragment.store_condition, items
    )
    constructor = AssociationCtor.identity(fragment.client_source, fragment.alpha)
    return AssociationView(fragment.client_source, query, constructor)


# ---------------------------------------------------------------------------
# Update views
# ---------------------------------------------------------------------------

def store_condition_pins(fragment: MappingFragment, mapping: Mapping) -> Dict[str, object]:
    """Columns pinned to constants by the fragment's store condition.

    Only conjunctively-entailed equality atoms pin (the TPH discriminator
    ``disc = 'Employee'``).  A store-condition column that is neither
    pinned nor mapped cannot be written back — the mapping is rejected.
    """
    pins: Dict[str, object] = {}
    _collect_pins(fragment.store_condition, pins)
    for column in referenced_attrs(fragment.store_condition):
        if column in pins or fragment.maps_column(column) is not None:
            continue
        if isinstance(fragment.store_condition, TrueCond):
            continue
        if _column_only_not_null(fragment.store_condition, column):
            continue
        raise MappingError(
            f"store condition of fragment on {fragment.store_table!r} constrains "
            f"column {column!r} which is neither mapped nor pinned to a constant; "
            "update views cannot be generated"
        )
    return pins


def _collect_pins(condition: Condition, pins: Dict[str, object]) -> None:
    from repro.algebra.conditions import IsNull

    if isinstance(condition, Comparison) and condition.op == "=":
        pins[condition.attr] = condition.const
    elif isinstance(condition, IsNull):
        pins[condition.attr] = None
    elif isinstance(condition, And):
        for operand in condition.operands:
            _collect_pins(operand, pins)


def _column_only_not_null(condition: Condition, column: str) -> bool:
    """True when the only constraint on *column* is IS NOT NULL (the
    association-fragment pattern: the joined key value satisfies it)."""
    for atom in condition.atoms():
        if isinstance(atom, IsNotNull) and atom.attr == column:
            continue
        if column in referenced_attrs(atom):
            return False
    return True


def entity_update_contribution(
    fragment: MappingFragment, mapping: Mapping
) -> Tuple[Query, Tuple[str, ...]]:
    """Client→store contribution of one entity fragment, with its columns."""
    pins = store_condition_pins(fragment, mapping)
    items = [ProjItem(column, Col(attr)) for attr, column in fragment.attribute_map]
    for column, value in pins.items():
        if fragment.maps_column(column) is None:
            items.append(ProjItem(column, Const(value)))
    query = project_select(
        SetScan(fragment.client_source), fragment.client_condition, tuple(items)
    )
    return query, tuple(item.output for item in items)


def association_update_contribution(
    fragment: MappingFragment, mapping: Mapping
) -> Tuple[Query, Tuple[str, ...]]:
    """``π_{PK1 AS f(PK1), PK2 AS f(PK2)}(A)`` for one association fragment."""
    items = tuple(ProjItem(column, Col(attr)) for attr, column in fragment.attribute_map)
    query = Project(AssociationScan(fragment.client_source), items)
    return query, tuple(item.output for item in items)


def build_update_view(
    mapping: Mapping,
    table_name: str,
    budget: Optional[WorkBudget] = None,
) -> UpdateView:
    """``(Q_T | τ_T)`` combining every fragment that maps into the table."""
    fragments = mapping.fragments_for_table(table_name)
    if not fragments:
        raise MappingError(f"no fragments map into table {table_name!r}")
    entity_fragments = [f for f in fragments if not f.is_association]
    assoc_fragments = [f for f in fragments if f.is_association]

    _check_entity_fragment_compatibility(mapping, table_name, entity_fragments, budget)

    entity_queries = [
        entity_update_contribution(fragment, mapping)[0]
        for fragment in entity_fragments
    ]
    query: Optional[Query] = union_all(entity_queries) if entity_queries else None

    table_key = mapping.store_schema.table(table_name).primary_key
    for fragment in assoc_fragments:
        contribution, _ = association_update_contribution(fragment, mapping)
        if query is None:
            query = contribution
        else:
            query = LeftOuterJoin(query, contribution, on=tuple(table_key))

    assert query is not None
    table = mapping.store_schema.table(table_name)
    produced = set(_produced_columns(query))
    assignments = tuple(
        (column, Col(column) if column in produced else Const(None))
        for column in table.column_names
    )
    return UpdateView(table_name, query, RowCtor(table_name, assignments))


def _produced_columns(query: Query) -> Tuple[str, ...]:
    """Static output columns of an update-view body (no context needed:
    every leaf is wrapped in an explicit projection)."""
    if isinstance(query, Project):
        return query.output_names
    if isinstance(query, Select):
        return _produced_columns(query.source)
    if isinstance(query, (LeftOuterJoin, FullOuterJoin)):
        left = _produced_columns(query.left)
        right = _produced_columns(query.right)
        return left + tuple(c for c in right if c not in left)
    if hasattr(query, "branches"):
        columns: List[str] = []
        for branch in query.branches:  # type: ignore[attr-defined]
            for column in _produced_columns(branch):
                if column not in columns:
                    columns.append(column)
        return tuple(columns)
    raise MappingError(f"cannot determine produced columns of {query!r}")


def _check_entity_fragment_compatibility(
    mapping: Mapping,
    table_name: str,
    entity_fragments: Sequence[MappingFragment],
    budget: Optional[WorkBudget],
) -> None:
    """Reject same-table entity fragments that can fire for the same entity
    with different column sets — UNION ALL would split one row in two.

    No paper scenario produces this shape; it is an explicit limitation.
    """
    for i, left in enumerate(entity_fragments):
        for right in entity_fragments[i + 1 :]:
            if left.client_source != right.client_source:
                continue
            if set(left.beta) == set(right.beta):
                continue
            space = ClientConditionSpace(
                mapping.client_schema,
                left.client_source,
                [left.client_condition, right.client_condition],
            )
            overlap = and_(left.client_condition, right.client_condition)
            if space.satisfiable(overlap, budget):
                raise MappingError(
                    f"unsupported mapping: fragments on table {table_name!r} with "
                    "overlapping client conditions map different column sets"
                )


# ---------------------------------------------------------------------------
# Whole-mapping view generation
# ---------------------------------------------------------------------------

def generate_views(
    mapping: Mapping, budget: Optional[WorkBudget] = None
) -> CompiledViews:
    """Generate all query, association and update views of *mapping*."""
    views = CompiledViews()
    analyses: Dict[str, SetAnalysis] = {}
    for entity_set in mapping.client_schema.entity_sets:
        if not mapping.fragments_for_set(entity_set.name):
            continue
        analysis = SetAnalysis(mapping, entity_set.name, budget)
        analyses[entity_set.name] = analysis
        for view in build_query_views_for_set(
            mapping, entity_set.name, analysis, budget
        ).values():
            views.set_query_view(view)
    for fragment in mapping.association_fragments():
        views.set_association_view(build_association_view(mapping, fragment))
    for table_name in mapping.mapped_tables():
        views.set_update_view(build_update_view(mapping, table_name, budget))
    return views
