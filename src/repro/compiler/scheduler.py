"""A per-table/per-set scheduler for validation checks.

Full-mapping validation (Algorithm 1 of [13]) decomposes into many
*independent* units of exponential work: one cell enumeration per store
table, one containment check per foreign key, one coverage check and one
roundtrip batch per entity set.  The serial baseline runs them one after
another; this module executes the same units through an explicit DAG of
:class:`ValidationCheck` nodes so independent checks can run concurrently.

Three executors:

* ``"serial"`` — run checks in declaration order on the calling thread.
  Byte-identical behaviour (work order, budget ticks, first error raised)
  to the pre-scheduler validation loop; the default for ``workers <= 1``.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the budget and cache directly.  Under a GIL interpreter this
  adds no CPU parallelism for the pure-Python checks, but it preserves
  exact budget/cache semantics and overlaps any releases of the GIL; the
  default for ``workers > 1``.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for
  real CPU parallelism on GIL builds.  The mapping and views are shipped
  to each worker once (pool initializer); every worker enforces its own
  copy of the budget limits and reports consumed steps back, which the
  parent re-accounts into the shared budget as results arrive.  Budget
  trips are therefore detected at check granularity rather than at single
  ticks, and the per-session cache is not shared across processes.

Error determinism: in parallel modes, every scheduled check runs (or is
skipped because a dependency failed) and the error of the *earliest
failing check in declaration order* is raised — the same error a serial
run would surface first.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.budget import WorkBudget, ensure_budget

EXECUTORS = ("serial", "thread", "process")


@dataclass
class ValidationCheck:
    """One schedulable unit of validation work.

    ``run`` executes the check in-process and returns its counters
    (e.g. ``{"store_cells": 12}``); a failing check raises.  ``deps`` name
    checks that must complete first (e.g. store-cell reasoning reads the
    set analyses the coverage checks build).  ``spec`` is a small picklable
    ``(kind, *args)`` tuple from which a process worker can re-run the
    check against its own copy of the mapping and views.
    """

    name: str
    kind: str
    run: Callable[[], Dict[str, int]]
    deps: Tuple[str, ...] = ()
    spec: Optional[Tuple[object, ...]] = None


@dataclass
class CheckResult:
    """Outcome of one executed check."""

    name: str
    kind: str
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0


def describe_checks(checks: Sequence[object]) -> str:
    """A one-line ``N check(s): kind xM, ...`` summary.

    Accepts :class:`ValidationCheck` objects or bare check names (the
    ``kind:qualifier`` strings a :class:`~repro.incremental.smo.BatchResult`
    or plan reports); used by the ``repro plan`` / ``repro evolve --batch``
    output.
    """
    names = [
        check.name if isinstance(check, ValidationCheck) else str(check)
        for check in checks
    ]
    if not names:
        return "0 checks"
    kinds: Dict[str, int] = {}
    for name in names:
        kind = name.split(":", 1)[0]
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = ", ".join(f"{kind} x{count}" for kind, count in sorted(kinds.items()))
    return f"{len(names)} check(s): {summary}"


class ValidationScheduler:
    """Executes a list of :class:`ValidationCheck` units."""

    def __init__(self, workers: int = 1, executor: Optional[str] = None) -> None:
        self.workers = max(1, int(workers))
        if executor is None:
            executor = "serial" if self.workers == 1 else "thread"
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown validation executor {executor!r}; expected one of {EXECUTORS}"
            )
        if self.workers == 1 and executor == "thread":
            executor = "serial"  # one thread is the serial path, minus the pool
        self.executor = executor

    # ------------------------------------------------------------------
    def run(
        self,
        checks: Sequence[ValidationCheck],
        mapping=None,
        views=None,
        budget: Optional[WorkBudget] = None,
        symbolic: bool = True,
    ) -> List[CheckResult]:
        """Execute all *checks*; return results in declaration order.

        Raises the (deterministically chosen) first error when any check
        fails.  ``mapping``/``views``/``budget`` are only required by the
        process executor, which re-materialises them per worker;
        ``symbolic`` is shipped to process workers so their re-run of a
        check spec uses the same containment fast-path setting as the
        in-process runners (serial/thread runners have it baked into
        their closures already).
        """
        checks = list(checks)
        if self.executor == "serial":
            return self._run_serial(checks)
        if self.executor == "thread":
            return self._run_threads(checks)
        return self._run_processes(checks, mapping, views, budget, symbolic)

    # ------------------------------------------------------------------
    def _run_serial(self, checks: List[ValidationCheck]) -> List[CheckResult]:
        results: List[CheckResult] = []
        for check in checks:
            started = time.perf_counter()
            counters = check.run()
            results.append(
                CheckResult(
                    name=check.name,
                    kind=check.kind,
                    counters=counters,
                    elapsed=time.perf_counter() - started,
                )
            )
        return results

    # ------------------------------------------------------------------
    def _run_threads(self, checks: List[ValidationCheck]) -> List[CheckResult]:
        by_name = {check.name: check for check in checks}
        waiting: Dict[str, Set[str]] = {
            check.name: {dep for dep in check.deps if dep in by_name}
            for check in checks
        }
        dependents: Dict[str, List[str]] = {}
        for check in checks:
            for dep in check.deps:
                if dep in by_name:
                    dependents.setdefault(dep, []).append(check.name)

        results: Dict[str, CheckResult] = {}
        errors: Dict[str, BaseException] = {}
        submitted: Set[str] = set()

        def timed(check: ValidationCheck) -> CheckResult:
            started = time.perf_counter()
            counters = check.run()
            return CheckResult(
                name=check.name,
                kind=check.kind,
                counters=counters,
                elapsed=time.perf_counter() - started,
            )

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures: Dict[Future, str] = {}

            def submit_ready() -> None:
                for name, deps in waiting.items():
                    if not deps and name not in submitted:
                        submitted.add(name)
                        futures[pool.submit(timed, by_name[name])] = name

            submit_ready()
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    name = futures.pop(future)
                    try:
                        results[name] = future.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors[name] = exc
                        continue
                    for dependent in dependents.get(name, ()):
                        waiting[dependent].discard(name)
                submit_ready()

        self._raise_first_error(checks, errors)
        return [results[c.name] for c in checks if c.name in results]

    # ------------------------------------------------------------------
    def _run_processes(
        self,
        checks: List[ValidationCheck],
        mapping,
        views,
        budget: Optional[WorkBudget],
        symbolic: bool = True,
    ) -> List[CheckResult]:
        if mapping is None or views is None:
            raise ValueError("the process executor needs the mapping and views")
        budget = ensure_budget(budget)
        payload = pickle.dumps(
            (mapping, views, budget.max_steps, budget.max_seconds, symbolic)
        )
        specs = [check.spec for check in checks]
        if any(spec is None for spec in specs):
            raise ValueError("every check needs a picklable spec for process mode")

        results: Dict[str, CheckResult] = {}
        errors: Dict[str, BaseException] = {}
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_process_worker,
            initargs=(payload,),
        ) as pool:
            futures = {
                pool.submit(_run_check_spec, check.spec): check for check in checks
            }
            for future in list(futures):
                check = futures[future]
                try:
                    counters, steps, elapsed = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[check.name] = exc
                    continue
                results[check.name] = CheckResult(
                    name=check.name,
                    kind=check.kind,
                    counters=counters,
                    elapsed=elapsed,
                )
                if steps:
                    try:
                        budget.tick(steps)  # re-account worker steps globally
                    except BaseException as exc:  # CompilationBudgetExceeded
                        errors.setdefault(check.name, exc)

        self._raise_first_error(checks, errors)
        return [results[c.name] for c in checks if c.name in results]

    # ------------------------------------------------------------------
    @staticmethod
    def _raise_first_error(
        checks: Sequence[ValidationCheck], errors: Dict[str, BaseException]
    ) -> None:
        if not errors:
            return
        for check in checks:  # declaration order == serial surfacing order
            if check.name in errors:
                raise errors[check.name]


# ---------------------------------------------------------------------------
# Process-pool worker side
# ---------------------------------------------------------------------------

_WORKER_CONTEXT: Optional[dict] = None


def _init_process_worker(payload: bytes) -> None:
    """Materialise mapping/views/budget/cache once per worker process."""
    global _WORKER_CONTEXT
    from repro.containment.cache import ValidationCache

    mapping, views, max_steps, max_seconds, symbolic = pickle.loads(payload)
    if max_steps is None and max_seconds is None:
        budget = ensure_budget(None)
    else:
        budget = WorkBudget(max_steps=max_steps, max_seconds=max_seconds)
    _WORKER_CONTEXT = {
        "mapping": mapping,
        "views": views,
        "budget": budget,
        "analyses": {},
        "cache": ValidationCache(),
        "symbolic": symbolic,
    }


def _run_check_spec(spec: Tuple[object, ...]) -> Tuple[Dict[str, int], int, float]:
    """Run one check inside a worker; return (counters, steps, elapsed)."""
    from repro.compiler import validation as V

    assert _WORKER_CONTEXT is not None, "worker used before initialisation"
    context = _WORKER_CONTEXT
    mapping, views = context["mapping"], context["views"]
    budget, analyses, cache = context["budget"], context["analyses"], context["cache"]
    kind, args = spec[0], spec[1:]
    steps_before = budget.steps
    started = time.perf_counter()
    if kind == "coverage":
        counters = V.run_coverage_check(mapping, args[0], analyses, budget, cache)
    elif kind == "store-cells":
        cells = V.check_store_cells(mapping, args[0], analyses, budget, cache)
        counters = {"store_cells": cells}
    elif kind == "fk-preservation":
        table_name, index = args
        foreign_key = mapping.store_schema.table(table_name).foreign_keys[index]
        counters = V.check_foreign_key_preserved(
            mapping,
            views,
            table_name,
            foreign_key,
            budget,
            cache,
            symbolic=context["symbolic"],
        )
    elif kind == "roundtrip":
        counters = {}
        counters["roundtrip_states"] = V.roundtrip_spotcheck(
            mapping, views, budget, set_names=[args[0]], cache=cache, counters=counters
        )
    else:
        raise ValueError(f"unknown check kind {kind!r}")
    return counters, budget.steps - steps_before, time.perf_counter() - started
