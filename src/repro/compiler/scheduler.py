"""A per-table/per-set scheduler for validation checks.

Full-mapping validation (Algorithm 1 of [13]) decomposes into many
*independent* units of exponential work: one cell enumeration per store
table, one containment check per foreign key, one coverage check and one
roundtrip batch per entity set.  The serial baseline runs them one after
another; this module executes the same units through an explicit DAG of
:class:`ValidationCheck` nodes so independent checks can run concurrently.

Three executors:

* ``"serial"`` — run checks in declaration order on the calling thread.
  Byte-identical behaviour (work order, budget ticks, first error raised)
  to the pre-scheduler validation loop; the default for ``workers <= 1``.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the budget and cache directly.  Under a GIL interpreter this
  adds no CPU parallelism for the pure-Python checks, but it preserves
  exact budget/cache semantics and overlaps any releases of the GIL; the
  default for ``workers > 1``.
* ``"process"`` — real CPU parallelism on GIL builds, via a *persistent*
  :class:`~concurrent.futures.ProcessPoolExecutor` and **shard
  stealing**: the check DAG is packed into per-neighborhood shards
  (:func:`build_shards`) that idle workers pull from the pool's shared
  queue.  Shards — not single checks — are the unit of stealing, so the
  cost of shipping the mapping/views payload and rebuilding per-process
  state amortizes over every check in the shard, and the pool itself is
  reused across runs (e.g. the batches of an ``evolve_many`` session), so
  a warm worker often needs no payload at all: contexts are cached
  worker-side under a digest of the payload, and the parent only ships
  the bytes when a worker reports it has never seen that digest.

Shard affinity follows the data: a table's store-cell check lands in the
same shard as the coverage checks of the entity sets it reads (they share
one ``SetAnalysis``), so the total work a process run performs — and the
steps it reports into the shared budget — equals the serial run's.
Workers report consumed steps back per check, *including failed checks*,
and the parent re-accounts them into the shared budget as results
arrive; budget trips are therefore detected at check granularity rather
than at single ticks.  When the parent's validation cache is backed by a
persistent store, workers attach to the same on-disk store, so their
subproblem results are shared with the parent, with each other, and with
every later process.

Error determinism: in parallel modes, every scheduled check runs (or is
skipped because a dependency failed) and the error of the *earliest
failing check in declaration order* is raised — the same error a serial
run would surface first.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.budget import WorkBudget, ensure_budget

EXECUTORS = ("serial", "thread", "process")


@dataclass
class ValidationCheck:
    """One schedulable unit of validation work.

    ``run`` executes the check in-process and returns its counters
    (e.g. ``{"store_cells": 12}``); a failing check raises.  ``deps`` name
    checks that must complete first (e.g. store-cell reasoning reads the
    set analyses the coverage checks build).  ``spec`` is a small picklable
    ``(kind, *args)`` tuple from which a process worker can re-run the
    check against its own copy of the mapping and views.
    """

    name: str
    kind: str
    run: Callable[[], Dict[str, int]]
    deps: Tuple[str, ...] = ()
    spec: Optional[Tuple[object, ...]] = None


@dataclass
class CheckResult:
    """Outcome of one executed check."""

    name: str
    kind: str
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0


def describe_checks(checks: Sequence[object]) -> str:
    """A one-line ``N check(s): kind xM, ...`` summary.

    Accepts :class:`ValidationCheck` objects or bare check names (the
    ``kind:qualifier`` strings a :class:`~repro.incremental.smo.BatchResult`
    or plan reports); used by the ``repro plan`` / ``repro evolve --batch``
    output.
    """
    names = [
        check.name if isinstance(check, ValidationCheck) else str(check)
        for check in checks
    ]
    if not names:
        return "0 checks"
    kinds: Dict[str, int] = {}
    for name in names:
        kind = name.split(":", 1)[0]
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = ", ".join(f"{kind} x{count}" for kind, count in sorted(kinds.items()))
    return f"{len(names)} check(s): {summary}"


def build_shards(
    checks: Sequence[ValidationCheck],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[ValidationCheck]]:
    """Pack *checks* into affinity shards for the process executor.

    Grouping rule: a ``store-cells`` check is fused with the ``coverage``
    checks it depends on (they share the per-set analyses through the
    worker's context, so co-locating them makes a process run build each
    :class:`SetAnalysis` exactly once — the same count as a serial run).
    ``fk`` and ``roundtrip`` checks have no cross-check state and stay
    individual groups, free to land on any worker.

    Groups are then packed, in declaration order, into shards of at least
    *shard_size* checks (default: enough shards for every worker to steal
    a few — ``len(checks) / (workers * 4)``).  A fused group larger than
    the target becomes its own shard; declaration order is preserved both
    across and within shards, so intra-shard dependencies always run
    before their dependents.
    """
    checks = list(checks)
    if not checks:
        return []

    # Union-find over group labels: coverage:S lives in group ("set", S);
    # store-cells:T unions the groups of all its coverage dependencies.
    parent: Dict[object, object] = {}

    def find(label: object) -> object:
        parent.setdefault(label, label)
        while parent[label] != label:
            parent[label] = parent[parent[label]]
            label = parent[label]
        return label

    def union(a: object, b: object) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    labels: Dict[str, object] = {}
    for index, check in enumerate(checks):
        if check.kind == "coverage":
            labels[check.name] = ("set", check.name.split(":", 1)[1])
        elif check.kind == "store-cells":
            label: object = ("table", check.name.split(":", 1)[1])
            for dep in check.deps:
                if dep.startswith("coverage:"):
                    union(label, ("set", dep.split(":", 1)[1]))
            labels[check.name] = label
        else:
            labels[check.name] = ("solo", index)

    groups: "OrderedDict[object, List[ValidationCheck]]" = OrderedDict()
    for check in checks:
        groups.setdefault(find(labels[check.name]), []).append(check)

    if shard_size is None:
        target = max(1, (len(checks) + workers * 4 - 1) // (workers * 4))
    else:
        target = max(1, int(shard_size))

    shards: List[List[ValidationCheck]] = []
    current: List[ValidationCheck] = []
    for group in groups.values():
        current.extend(group)
        if len(current) >= target:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


class ValidationScheduler:
    """Executes a list of :class:`ValidationCheck` units."""

    def __init__(
        self,
        workers: int = 1,
        executor: Optional[str] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        if executor is None:
            executor = "serial" if self.workers == 1 else "thread"
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown validation executor {executor!r}; expected one of {EXECUTORS}"
            )
        if self.workers == 1 and executor == "thread":
            executor = "serial"  # one thread is the serial path, minus the pool
        self.executor = executor
        #: target checks per process shard (None: sized for the pool)
        self.shard_size = shard_size

    # ------------------------------------------------------------------
    def run(
        self,
        checks: Sequence[ValidationCheck],
        mapping=None,
        views=None,
        budget: Optional[WorkBudget] = None,
        symbolic: bool = True,
        cache=None,
    ) -> List[CheckResult]:
        """Execute all *checks*; return results in declaration order.

        Raises the (deterministically chosen) first error when any check
        fails.  ``mapping``/``views``/``budget`` are only required by the
        process executor, which re-materialises them per worker;
        ``symbolic`` is shipped to process workers so their re-run of a
        check spec uses the same containment fast-path setting as the
        in-process runners (serial/thread runners have it baked into
        their closures already).  ``cache`` (the parent's
        :class:`~repro.containment.cache.ValidationCache`) lets process
        workers mirror its setup — in particular, attach to the same
        persistent on-disk store when one is configured.
        """
        checks = list(checks)
        if self.executor == "serial":
            return self._run_serial(checks)
        if self.executor == "thread":
            return self._run_threads(checks)
        return self._run_processes(checks, mapping, views, budget, symbolic, cache)

    # ------------------------------------------------------------------
    def _run_serial(self, checks: List[ValidationCheck]) -> List[CheckResult]:
        results: List[CheckResult] = []
        for check in checks:
            started = time.perf_counter()
            counters = check.run()
            results.append(
                CheckResult(
                    name=check.name,
                    kind=check.kind,
                    counters=counters,
                    elapsed=time.perf_counter() - started,
                )
            )
        return results

    # ------------------------------------------------------------------
    def _run_threads(self, checks: List[ValidationCheck]) -> List[CheckResult]:
        by_name = {check.name: check for check in checks}
        waiting: Dict[str, Set[str]] = {
            check.name: {dep for dep in check.deps if dep in by_name}
            for check in checks
        }
        dependents: Dict[str, List[str]] = {}
        for check in checks:
            for dep in check.deps:
                if dep in by_name:
                    dependents.setdefault(dep, []).append(check.name)

        results: Dict[str, CheckResult] = {}
        errors: Dict[str, BaseException] = {}
        submitted: Set[str] = set()

        def timed(check: ValidationCheck) -> CheckResult:
            started = time.perf_counter()
            counters = check.run()
            return CheckResult(
                name=check.name,
                kind=check.kind,
                counters=counters,
                elapsed=time.perf_counter() - started,
            )

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures: Dict[Future, str] = {}

            def submit_ready() -> None:
                for name, deps in waiting.items():
                    if not deps and name not in submitted:
                        submitted.add(name)
                        futures[pool.submit(timed, by_name[name])] = name

            submit_ready()
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    name = futures.pop(future)
                    try:
                        results[name] = future.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors[name] = exc
                        continue
                    for dependent in dependents.get(name, ()):
                        waiting[dependent].discard(name)
                submit_ready()

        self._raise_first_error(checks, errors)
        return [results[c.name] for c in checks if c.name in results]

    # ------------------------------------------------------------------
    def _run_processes(
        self,
        checks: List[ValidationCheck],
        mapping,
        views,
        budget: Optional[WorkBudget],
        symbolic: bool = True,
        cache=None,
    ) -> List[CheckResult]:
        missing = [
            name
            for name, value in (("mapping", mapping), ("views", views))
            if value is None
        ]
        if missing:
            raise ValueError(
                "the process executor re-runs each check from its spec in "
                "worker processes and needs the compiled inputs to do so: "
                f"missing required argument(s) {', '.join(repr(m) for m in missing)} "
                "— pass them to ValidationScheduler.run() (or use the "
                "'serial'/'thread' executor, which runs the checks' own "
                "closures)"
            )
        budget = ensure_budget(budget)
        payload = pickle.dumps(
            (
                mapping,
                views,
                budget.max_steps,
                budget.max_seconds,
                symbolic,
                _cache_spec(cache),
            )
        )
        context_key = hashlib.sha256(payload).hexdigest()
        if any(check.spec is None for check in checks):
            raise ValueError("every check needs a picklable spec for process mode")

        shards = build_shards(checks, self.workers, self.shard_size)
        pool = _get_pool(self.workers)
        results: Dict[str, CheckResult] = {}
        errors: Dict[str, BaseException] = {}

        futures: Dict[Future, List[ValidationCheck]] = {}
        # The first wave (one submission per worker) carries the payload so
        # cold workers can build their context; the rest ship the digest
        # only, and a worker that turns out not to know it sends the shard
        # back for resubmission with the bytes attached.
        for index, shard in enumerate(shards):
            blob = payload if index < self.workers else None
            future = pool.submit(
                _run_shard, context_key, blob, [check.spec for check in shard]
            )
            futures[future] = shard

        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                shard = futures.pop(future)
                try:
                    outcome = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    for check in shard:
                        errors.setdefault(check.name, exc)
                    continue
                if outcome == _NEED_PAYLOAD:
                    retry = pool.submit(
                        _run_shard,
                        context_key,
                        payload,
                        [check.spec for check in shard],
                    )
                    futures[retry] = shard
                    pending.add(retry)
                    continue
                for check, (counters, error, steps, elapsed) in zip(shard, outcome):
                    # Reconcile the worker's consumed steps into the shared
                    # budget first — failed checks included — so process
                    # totals match a serial run over the same list.
                    if steps:
                        try:
                            budget.tick(steps)
                        except BaseException as exc:  # CompilationBudgetExceeded
                            errors.setdefault(check.name, exc)
                    if error is not None:
                        errors.setdefault(check.name, error)
                    elif counters is not None:
                        results[check.name] = CheckResult(
                            name=check.name,
                            kind=check.kind,
                            counters=counters,
                            elapsed=elapsed,
                        )

        self._raise_first_error(checks, errors)
        return [results[c.name] for c in checks if c.name in results]

    # ------------------------------------------------------------------
    @staticmethod
    def _raise_first_error(
        checks: Sequence[ValidationCheck], errors: Dict[str, BaseException]
    ) -> None:
        if not errors:
            return
        for check in checks:  # declaration order == serial surfacing order
            if check.name in errors:
                raise errors[check.name]


# ---------------------------------------------------------------------------
# Persistent pool (parent side)
# ---------------------------------------------------------------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool for *workers*, created on first use.

    Persistent by design: reusing live workers across validation runs is
    what lets their cached contexts amortize the payload shipping — the
    dominant cost of the old per-run pool — across every batch of an
    ``evolve_many`` session.  ``concurrent.futures`` joins the workers at
    interpreter exit; :func:`shutdown_pools` releases them earlier.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every persistent validation pool (tests, benchmarks)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def _cache_spec(cache) -> Optional[Tuple[str, Optional[str]]]:
    """How a worker should set up its own validation cache.

    ``None`` (no cache) /  ``("memory", None)`` / ``("disk", directory)``
    — the last makes every worker attach to the parent's persistent
    store, so subproblems solved in one process are hits in all others.
    """
    if cache is None:
        return None
    store = getattr(cache, "store", None)
    if store is not None and getattr(store, "directory", None):
        return ("disk", store.directory)
    return ("memory", None)


# ---------------------------------------------------------------------------
# Process-pool worker side
# ---------------------------------------------------------------------------

#: marker returned by a worker that was handed a digest it has no context
#: for (the parent resubmits the shard with the payload bytes attached)
_NEED_PAYLOAD = "need-payload"

#: per-process context cache: payload digest -> materialized context.
#: Bounded, LRU — a long-lived pool serving several sessions/models keeps
#: the few contexts in active rotation and drops the rest.
_WORKER_CONTEXTS: "OrderedDict[str, dict]" = OrderedDict()
_WORKER_CONTEXT_BOUND = 4


def _worker_context(context_key: str, payload: Optional[bytes]) -> Optional[dict]:
    """The cached context for *context_key*, building it from *payload*.

    Returns ``None`` when the context is unknown and no payload came
    along — the caller answers :data:`_NEED_PAYLOAD`.
    """
    context = _WORKER_CONTEXTS.get(context_key)
    if context is None:
        if payload is None:
            return None
        from repro.containment.cache import ValidationCache

        mapping, views, max_steps, max_seconds, symbolic, cache_spec = (
            pickle.loads(payload)
        )
        cache = None
        if cache_spec is not None:
            kind, directory = cache_spec
            store = None
            if kind == "disk":
                from repro.containment.persist import PersistentCacheStore

                store = PersistentCacheStore(directory)
            cache = ValidationCache(store=store)
        context = {
            "mapping": mapping,
            "views": views,
            "limits": (max_steps, max_seconds),
            "symbolic": symbolic,
            "analyses": {},
            "cache": cache,
        }
        _WORKER_CONTEXTS[context_key] = context
        while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_BOUND:
            _, evicted = _WORKER_CONTEXTS.popitem(last=False)
            old_cache = evicted.get("cache")
            if old_cache is not None:
                old_cache.close()
    _WORKER_CONTEXTS.move_to_end(context_key)
    return context


def _run_shard(
    context_key: str,
    payload: Optional[bytes],
    specs: List[Tuple[object, ...]],
):
    """Run one shard of check specs inside a worker process.

    Returns :data:`_NEED_PAYLOAD`, or a list aligned with *specs* of
    ``(counters | None, error | None, steps, elapsed)`` — steps are
    reported even for failing checks, so the parent's budget
    reconciliation sees every unit of work this worker performed.
    """
    context = _worker_context(context_key, payload)
    if context is None:
        return _NEED_PAYLOAD
    max_steps, max_seconds = context["limits"]
    if max_steps is None and max_seconds is None:
        budget = ensure_budget(None)
    else:
        # Fresh per shard: a worker enforces the run's limits locally (the
        # parent enforces them globally from the reported step counts).
        budget = WorkBudget(max_steps=max_steps, max_seconds=max_seconds)
    outcomes = []
    for spec in specs:
        steps_before = budget.steps
        started = time.perf_counter()
        try:
            counters = _run_one_spec(context, spec, budget)
            error: Optional[BaseException] = None
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            counters, error = None, exc
        outcomes.append(
            (
                counters,
                error,
                budget.steps - steps_before,
                time.perf_counter() - started,
            )
        )
    return outcomes


def _run_one_spec(
    context: dict, spec: Tuple[object, ...], budget: WorkBudget
) -> Dict[str, int]:
    """Re-run one check from its picklable spec against a worker context."""
    from repro.compiler import validation as V

    mapping, views = context["mapping"], context["views"]
    analyses, cache = context["analyses"], context["cache"]
    kind, args = spec[0], spec[1:]
    if kind == "coverage":
        return V.run_coverage_check(mapping, args[0], analyses, budget, cache)
    if kind == "store-cells":
        cells = V.check_store_cells(mapping, args[0], analyses, budget, cache)
        return {"store_cells": cells}
    if kind == "fk-preservation":
        table_name, index = args
        foreign_key = mapping.store_schema.table(table_name).foreign_keys[index]
        return V.check_foreign_key_preserved(
            mapping,
            views,
            table_name,
            foreign_key,
            budget,
            cache,
            symbolic=context["symbolic"],
        )
    if kind == "roundtrip":
        counters: Dict[str, int] = {}
        counters["roundtrip_states"] = V.roundtrip_spotcheck(
            mapping, views, budget, set_names=[args[0]], cache=cache,
            counters=counters,
        )
        return counters
    raise ValueError(f"unknown check kind {kind!r}")
