"""The full mapping compiler (baseline): analysis, view generation,
validation (Algorithm 1 of [13] re-derived), orchestration."""

from repro.compiler.analysis import (
    SetAnalysis,
    TypeCell,
    check_coverage,
    check_disambiguation,
)
from repro.compiler.full import CompilationResult, compile_mapping
from repro.compiler.optimize import (
    build_optimized_query_views_for_set,
    optimize_views,
)
from repro.compiler.scheduler import (
    CheckResult,
    ValidationCheck,
    ValidationScheduler,
)
from repro.compiler.validation import (
    ValidationReport,
    build_validation_checks,
    check_all_foreign_keys,
    check_foreign_key_preserved,
    check_store_cells,
    roundtrip_spotcheck,
    run_coverage_check,
    validate_mapping,
)
from repro.compiler.viewgen import (
    build_association_view,
    build_query_views_for_set,
    build_update_view,
    generate_views,
)

__all__ = [
    "CheckResult",
    "CompilationResult",
    "SetAnalysis",
    "TypeCell",
    "ValidationCheck",
    "ValidationReport",
    "ValidationScheduler",
    "build_association_view",
    "build_optimized_query_views_for_set",
    "build_query_views_for_set",
    "build_update_view",
    "build_validation_checks",
    "check_all_foreign_keys",
    "check_coverage",
    "check_disambiguation",
    "check_foreign_key_preserved",
    "check_store_cells",
    "compile_mapping",
    "generate_views",
    "optimize_views",
    "roundtrip_spotcheck",
    "run_coverage_check",
    "validate_mapping",
]
