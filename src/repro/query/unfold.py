"""Query translation by view unfolding (Section 1.1).

Translates an :class:`EntityQuery` into store-level queries by unfolding
the compiled query view of the entity set:

1. the view's CASE constructor is split into branches, each with its
   *path condition* over the provenance flags (first-match semantics made
   explicit);
2. the client condition is *specialised* per branch: type atoms become
   constants (the branch constructs a known concrete type), attribute
   atoms are rewritten through the branch's constructor assignments
   (columns renamed, pinned constants folded to TRUE/FALSE);
3. branches whose specialised condition simplifies to FALSE are pruned;
4. what remains are pure relational queries over store tables, executed
   with the ordinary evaluator.

``execute_on_store(query, views, store_state)`` therefore computes the
same answer as ``execute_on_client(query, c)`` whenever ``store_state =
V(c)`` — the equivalence the roundtripping guarantee promises, and the
property the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.algebra.conditions import (
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    TRUE,
    and_,
    evaluate_condition,
)
from repro.algebra.constructors import Constructor, EntityCtor, IfCtor
from repro.algebra.entity_sql import query_to_sql
from repro.algebra.evaluate import StoreContext, evaluate_query
from repro.algebra.queries import Col, Const, Query, Select
from repro.algebra.simplify import simplify
from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError
from repro.mapping.views import CompiledViews
from repro.query.language import EntityQuery
from repro.relational.instances import StoreState


@dataclass(frozen=True)
class UnfoldedBranch:
    """One CASE branch of the unfolded query."""

    store_query: Query
    constructor: EntityCtor
    #: the branch's concrete type (what its rows construct)
    concrete_type: str


@dataclass(frozen=True)
class UnfoldedQuery:
    """A client query translated into store-level branches."""

    source: EntityQuery
    branches: Tuple[UnfoldedBranch, ...]

    def to_sql(self) -> str:
        blocks = []
        for branch in self.branches:
            blocks.append(
                f"-- constructs {branch.concrete_type}\n"
                + query_to_sql(branch.store_query)
            )
        return "\n\nUNION ALL\n\n".join(blocks) if blocks else "-- empty query"

    def run(self, store_state: StoreState) -> List[object]:
        """Execute against a concrete store state with the interpreter."""
        context = StoreContext(store_state)
        return self._construct_all(
            lambda branch: evaluate_query(branch.store_query, context)
        )

    def run_on(self, backend) -> List[object]:
        """Execute on a :class:`~repro.backend.base.StoreBackend` — the
        interpreter for the memory backend, generated SQL inside the
        engine for SQLite."""
        return self._construct_all(
            lambda branch: backend.run_query(branch.store_query)
        )

    def _construct_all(self, rows_of) -> List[object]:
        return construct_results(
            self.source.projection,
            ((branch, rows_of(branch)) for branch in self.branches),
        )


def construct_results(
    projection: Optional[Tuple[str, ...]],
    branch_rows: Iterable[Tuple[UnfoldedBranch, Iterable[Dict[str, object]]]],
) -> List[object]:
    """Turn per-branch store rows into entities or projected row dicts.

    Shared by :meth:`UnfoldedQuery.run`/:meth:`UnfoldedQuery.run_on` and the
    plan cache's prepared execution path, so cached plans construct results
    byte-identically to a fresh unfold.
    """
    results: List[object] = []
    for branch, rows in branch_rows:
        for row in rows:
            if projection is None:
                results.append(branch.constructor.construct(row))
            else:
                assigned = dict(branch.constructor.assignments)
                out: Dict[str, object] = {}
                for attr in projection:
                    expr = assigned.get(attr)
                    if expr is None:
                        out[attr] = None
                    elif isinstance(expr, Const):
                        out[attr] = expr.value
                    else:
                        out[attr] = row.get(expr.name)
                results.append(out)
    return results


def _ctor_branches(constructor: Constructor) -> List[Tuple[Condition, EntityCtor]]:
    """Flatten an IfCtor chain into (path condition, leaf ctor) pairs with
    first-match semantics made explicit."""
    branches: List[Tuple[Condition, EntityCtor]] = []
    negated: List[Condition] = []
    node = constructor
    while isinstance(node, IfCtor):
        path = and_(*negated, node.condition)
        leaf = node.then_ctor
        if isinstance(leaf, EntityCtor):
            branches.append((path, leaf))
        else:  # nested then-side chains recurse
            for inner_path, inner_leaf in _ctor_branches(leaf):
                branches.append((and_(path, inner_path), inner_leaf))
        negated.append(Not(node.condition))
        node = node.else_ctor
    if isinstance(node, EntityCtor):
        branches.append((and_(*negated), node))
    else:
        for inner_path, inner_leaf in _ctor_branches(node):
            branches.append((and_(*negated, inner_path), inner_leaf))
    return branches


class _ConstContext:
    """Evaluates an atom against a single pinned constant."""

    def __init__(self, value: object) -> None:
        self.value = value

    def attr_value(self, name: str) -> object:
        return self.value

    def is_of(self, type_name: str, only: bool) -> bool:  # pragma: no cover
        raise EvaluationError("no type atoms here")


def _specialize_condition(
    condition: Condition,
    schema: ClientSchema,
    concrete_type: str,
    assignments: Dict[str, object],
) -> Condition:
    """Rewrite a client condition for one constructor branch."""
    ancestors = set(schema.ancestors_or_self(concrete_type))
    attributes = set(schema.attribute_names_of(concrete_type))

    def transform(node: Condition) -> Condition:
        if isinstance(node, IsOf):
            return TRUE if node.type_name in ancestors else FALSE
        if isinstance(node, IsOfOnly):
            return TRUE if node.type_name == concrete_type else FALSE
        if isinstance(node, (IsNull, IsNotNull, Comparison)):
            attr = node.attr
            if attr not in attributes:
                return FALSE  # atom over a different subtype's attribute
            expr = assignments.get(attr)
            if isinstance(expr, Const):
                # pinned constant: fold the atom
                if isinstance(node, IsNull):
                    holds = expr.value is None
                elif isinstance(node, IsNotNull):
                    holds = expr.value is not None
                else:
                    holds = evaluate_condition(
                        Comparison("pinned", node.op, node.const),
                        _ConstContext(expr.value),
                    )
                return TRUE if holds else FALSE
            if isinstance(expr, Col) and expr.name != attr:
                if isinstance(node, IsNull):
                    return IsNull(expr.name)
                if isinstance(node, IsNotNull):
                    return IsNotNull(expr.name)
                return Comparison(expr.name, node.op, node.const)
            return node
        return node

    return simplify(condition.transform(transform))


def unfold(
    query: EntityQuery,
    views: CompiledViews,
    schema: ClientSchema,
) -> UnfoldedQuery:
    """Translate *query* into store-level branches via the set's view."""
    root = schema.entity_set(query.set_name).root_type
    view = views.query_view(root)
    branches: List[UnfoldedBranch] = []
    for path_condition, leaf in _ctor_branches(view.constructor):
        specialized = _specialize_condition(
            query.condition, schema, leaf.type_name, dict(leaf.assignments)
        )
        if isinstance(specialized, FalseCond):
            continue
        combined = simplify(and_(path_condition, specialized))
        if isinstance(combined, FalseCond):
            continue
        store_query: Query = Select(view.query, combined)
        branches.append(UnfoldedBranch(store_query, leaf, leaf.type_name))
    return UnfoldedQuery(query, tuple(branches))


def execute_on_store(
    query: EntityQuery,
    views: CompiledViews,
    store_state: StoreState,
    schema: ClientSchema,
) -> List[object]:
    """Translate and run in one step."""
    return unfold(query, views, schema).run(store_state)
