"""Client-level queries and their translation by view unfolding (§1.1)."""

from repro.query.dml import (
    StoreDelta,
    TableDelta,
    apply_delta,
    diff_store_states,
    translate_update,
)
from repro.query.language import EntityQuery, execute_on_client
from repro.query.plancache import (
    CachedPlan,
    Param,
    PlanCache,
    PlanCacheStats,
    ServingStats,
    parameterize,
)
from repro.query.unfold import (
    UnfoldedBranch,
    UnfoldedQuery,
    execute_on_store,
    unfold,
)

__all__ = [
    "CachedPlan",
    "EntityQuery",
    "Param",
    "PlanCache",
    "PlanCacheStats",
    "ServingStats",
    "parameterize",
    "StoreDelta",
    "TableDelta",
    "apply_delta",
    "diff_store_states",
    "translate_update",
    "UnfoldedBranch",
    "UnfoldedQuery",
    "execute_on_client",
    "execute_on_store",
    "unfold",
]
