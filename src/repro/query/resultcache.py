"""The materialized result tier: cached answers maintained by deltas.

The plan cache (:mod:`repro.query.plancache`) amortizes *translation*;
this module amortizes *execution*.  A :class:`ResultCache` sits above the
plan cache and memoizes whole query answers — the constructed entities or
projected rows of one :class:`~repro.query.plancache.CachedPlan` bound
with one concrete parameter vector.  Entries are keyed exactly like
cached plans ((set name, model-slice fingerprint, shape fingerprint))
plus the bound parameters, so the same invalidation discipline carries
over verbatim.

What makes the tier worth having is that entries *survive writes*: on an
incremental save the signed store DML the write path already computed
(a :class:`~repro.query.dml.StoreDelta`) is propagated through each
cached plan's branch operators by read-side delta rules mirroring the
``ivm/writeplan`` counting algebra —

* table scan — the delta's own ±rows (update = −old, +new);
* select     — filter each signed row by the (bound) condition;
* project    — map each signed row through the projection items;
* union-all  — concatenate branch deltas, NULL-padded to the union width;
* ⋈ on k     — ``ΔL ⋈ R_new + L_old ⋈ ΔR``;
* ⟕ on k     — the same two terms plus *pad transitions*: at a join key
  whose right match count crosses 0 ↔ positive, the old left rows at
  that key lose or gain their NULL-padded row.

Each entry keeps a per-branch bag of store-level output rows with
multiplicity counts whose support is exactly
:func:`~repro.algebra.evaluate.evaluate_query`'s deduplicated output, so
applying the signed stream and re-filtering through the entry's bound
root predicate reconstructs the fresh answer in O(|Δ|) — probes go
through :meth:`~repro.relational.instances.StoreState.key_index`, never
a table scan.  Shapes the rules cannot maintain (full outer joins,
non-key join probes) mark the entry *unmaintainable*: it still serves
warm reads, but any write touching its tables invalidates it — always
correct, never stale.

Lifecycle, mirrored from the epoch engine's write paths:

* **populate** — a read miss executes the plan, bag-evaluates the bound
  branches over the same pinned state, and stores the entry (snapshot
  backends populate inline; live backends only after the seqlock
  validated the read);
* **maintain** — ``save_delta`` / ``apply_script`` derive the next
  epoch's cache with :meth:`ResultCache.successor_for_delta`: untouched
  entries are carried by reference, touched maintainable entries are
  rebuilt copy-on-write in O(|Δ|), everything else is invalidated.  The
  source cache is never mutated, so readers pinned to an old epoch keep
  byte-identical answers;
* **invalidate** — whole-state ``save`` drops entries by written tables
  (:meth:`successor_for_tables`), SMOs drop by touched neighborhood
  exactly as :meth:`PlanCache.invalidate` does (:meth:`successor`), and
  ``undo`` / ``replace_contents`` clear (data is restored wholesale, so
  table-scoped reasoning does not apply).

The cache is bounded by a cost-aware LRU: an entry's cost is its rows ×
width in cells, not its entry count, so one huge scan cannot silently
evict a hundred cheap probes while looking like a single entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.conditions import evaluate_condition
from repro.algebra.evaluate import (
    RowDict,
    StoreContext,
    TYPE_TAG,
    _RowConditionContext,
    evaluate_query_bag,
    join_key,
    join_rows,
    join_spec,
    output_columns,
)
from repro.algebra.queries import (
    Const,
    Join,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    TableScan,
    UnionAll,
)
from repro.errors import EvaluationError, IvmError
from repro.query.dml import StoreDelta
from repro.query.unfold import UnfoldedBranch
from repro.relational.instances import (
    StoreState,
    row_values,
    row_view,
)
from repro.relational.schema import StoreSchema

#: default LRU budget in cells (rows × width summed over all entries)
DEFAULT_RESULT_BUDGET = 2_000_000

Signed = Tuple[int, RowDict]
Probe = Callable[["_ReadRuntime", Tuple[object, ...], bool], List[RowDict]]

#: the dedup identity of one store-level output row — must match
#: :func:`~repro.algebra.evaluate.evaluate_query` exactly, because the
#: bag's support stands in for its deduplicated output
RowKey = Tuple[Tuple[str, object], ...]


def _dedup_key(row: RowDict) -> RowKey:
    return tuple(sorted((k, v) for k, v in row.items() if k != TYPE_TAG))


class _ReadRuntime:
    """Everything the read-side delta rules consume for one maintenance."""

    __slots__ = ("delta", "state", "context", "touched", "fallback_probes")

    def __init__(self, delta: StoreDelta, state: StoreState) -> None:
        self.delta = delta
        #: the *new* store state (the delta has already been applied)
        self.state = state
        self.context = StoreContext(state)
        self.touched: FrozenSet[str] = frozenset(
            name for name, td in delta.tables.items() if not td.empty
        )
        self.fallback_probes = 0


def _matches(
    row: RowDict, columns: Tuple[str, ...], values: Tuple[object, ...]
) -> bool:
    return all(row.get(c) == v for c, v in zip(columns, values))


def _never_probe(
    rt: "_ReadRuntime", values: Tuple[object, ...], old: bool
) -> List[RowDict]:
    return []


class _Node:
    """One lowered operator: a delta rule plus keyed-probe compilation.

    ``tables`` is the set of store tables under the subtree — a delta
    touching none of them propagates nothing, which is what lets a
    maintenance pass skip whole branches without evaluating them.
    """

    __slots__ = ("columns", "tables")

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        raise NotImplementedError

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        raise NotImplementedError


class _TableNode(_Node):
    __slots__ = ("table_name",)

    def __init__(self, table_name: str, columns: Tuple[str, ...]) -> None:
        self.table_name = table_name
        self.columns = columns
        self.tables = frozenset((table_name,))

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        td = rt.delta.tables.get(self.table_name)
        if td is None:
            return []
        out: List[Signed] = []
        for row in td.deletes:
            out.append((-1, row_view(row)))
        for row in td.inserts:
            out.append((+1, row_view(row)))
        for old_row, new_row in td.updates:
            out.append((-1, row_view(old_row)))
            out.append((+1, row_view(new_row)))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        known = set(self.columns)
        if any(c not in known for c in columns):
            return _never_probe
        table_name = self.table_name

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            # key_index is built lazily once per (table, columns) and
            # carried across successor states, so the steady state is an
            # O(1) bucket lookup — the read-side analogue of the
            # delta-scoped constraint probes.
            bucket = rt.state.key_index(table_name, columns).get(values, ())
            if not old:
                return [row_view(r) for r in bucket]
            td = rt.delta.tables.get(table_name)
            if td is None or td.empty:
                return [row_view(r) for r in bucket]
            # rewind the new-side bucket to the old side: drop rows the
            # delta inserted, add back the rows it deleted — O(|Δ_table|)
            gained = set()
            back: List = []
            for row in td.inserts:
                if row_values(row, columns) == values:
                    gained.add(row)
            for row in td.deletes:
                if row_values(row, columns) == values:
                    back.append(row)
            for old_row, new_row in td.updates:
                if row_values(new_row, columns) == values:
                    gained.add(new_row)
                if row_values(old_row, columns) == values:
                    back.append(old_row)
            rows = [r for r in bucket if r not in gained]
            rows.extend(back)
            return [row_view(r) for r in rows]

        return probe


class _SelectNode(_Node):
    __slots__ = ("source", "condition")

    def __init__(self, source: _Node, condition) -> None:
        self.source = source
        self.condition = condition
        self.columns = source.columns
        self.tables = source.tables

    def _keep(self, rt: _ReadRuntime, row: RowDict) -> bool:
        return evaluate_condition(
            self.condition, _RowConditionContext(row, rt.context)
        )

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        return [(s, r) for s, r in self.source.delta(rt) if self._keep(rt, r)]

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        source_probe = self.source.make_probe(columns)

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            return [
                r for r in source_probe(rt, values, old) if self._keep(rt, r)
            ]

        return probe


class _ProjectNode(_Node):
    __slots__ = ("source", "items")

    def __init__(self, source: _Node, items) -> None:
        self.source = source
        self.items = items
        self.columns = tuple(item.output for item in items)
        self.tables = source.tables

    def _project(self, row: RowDict) -> RowDict:
        out: RowDict = {}
        for item in self.items:
            if isinstance(item.expr, Const):
                out[item.output] = item.expr.value
            else:
                name = item.expr.name
                if name not in row:
                    raise EvaluationError(
                        f"projection references missing column {name!r} "
                        f"(row has {sorted(k for k in row if k != TYPE_TAG)})"
                    )
                out[item.output] = row[name]
        return out

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        return [(s, self._project(r)) for s, r in self.source.delta(rt)]

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        by_output = {item.output: item for item in self.items}
        pinned: List[Tuple[int, object]] = []
        source_columns: List[str] = []
        source_slots: List[int] = []
        for i, column in enumerate(columns):
            item = by_output.get(column)
            if item is None:
                return _never_probe
            if isinstance(item.expr, Const):
                pinned.append((i, item.expr.value))
            else:
                source_columns.append(item.expr.name)
                source_slots.append(i)
        source_probe = self.source.make_probe(tuple(source_columns))

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            for i, pin in pinned:
                if values[i] != pin:
                    return []
            sub_values = tuple(values[i] for i in source_slots)
            rows = (self._project(r) for r in source_probe(rt, sub_values, old))
            return [r for r in rows if _matches(r, columns, values)]

        return probe


class _UnionNode(_Node):
    __slots__ = ("branches",)

    def __init__(
        self, branches: Tuple[_Node, ...], all_columns: Tuple[str, ...]
    ) -> None:
        self.branches = branches
        self.columns = all_columns
        self.tables = frozenset().union(*(b.tables for b in branches))

    def _pad(self, row: RowDict) -> RowDict:
        return {column: row.get(column) for column in self.columns}

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        out: List[Signed] = []
        for branch in self.branches:
            if not (branch.tables & rt.touched):
                continue
            out.extend((s, self._pad(r)) for s, r in branch.delta(rt))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        branch_probes = [b.make_probe(columns) for b in self.branches]

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            out: List[RowDict] = []
            for bp in branch_probes:
                padded = (self._pad(r) for r in bp(rt, values, old))
                out.extend(r for r in padded if _matches(r, columns, values))
            return out

        return probe


class _JoinNode(_Node):
    """Inner join: ``ΔL ⋈ R_new + L_old ⋈ ΔR`` (no pad terms)."""

    __slots__ = ("left", "right", "on", "spec", "left_probe", "right_probe")

    def __init__(
        self, left: _Node, right: _Node, on: Optional[Tuple[str, ...]]
    ) -> None:
        self.left = left
        self.right = right
        self.spec = join_spec(left.columns, right.columns, on)
        if not self.spec.join_columns:
            raise IvmError("cannot maintain a cross join incrementally")
        self.on = self.spec.join_columns
        self.left_probe = left.make_probe(self.on)
        self.right_probe = right.make_probe(self.on)
        self.columns = left.columns + tuple(
            c for c in right.columns if c not in left.columns
        )
        self.tables = left.tables | right.tables

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        out: List[Signed] = []
        spec = self.spec
        if self.left.tables & rt.touched:
            for sign, lrow in self.left.delta(rt):
                key = join_key(lrow, self.on)
                if key is None:
                    continue
                matches = self.right_probe(rt, key, False)
                for row in join_rows([lrow], matches, spec, False, False):
                    out.append((sign, row))
        if self.right.tables & rt.touched:
            for sign, rrow in self.right.delta(rt):
                key = join_key(rrow, self.on)
                if key is None:
                    continue
                left_old = self.left_probe(rt, key, True)
                if not left_old:
                    continue
                for row in join_rows(left_old, [rrow], spec, False, False):
                    out.append((sign, row))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        if tuple(columns) != tuple(self.on):
            raise IvmError(
                f"join probe on {columns!r} does not match join key {self.on!r}"
            )

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            left_rows = self.left_probe(rt, values, old)
            if not left_rows:
                return []
            right_rows = self.right_probe(rt, values, old)
            return join_rows(left_rows, right_rows, self.spec, False, False)

        return probe


class _LojNode(_Node):
    """``ΔL ⟕ R_new + L_old ⋈ ΔR`` plus pad transitions — the exact rule
    of :class:`repro.ivm.writeplan._LojNode`, lowered over table scans."""

    __slots__ = ("left", "right", "on", "spec", "left_probe", "right_probe")

    def __init__(
        self, left: _Node, right: _Node, on: Optional[Tuple[str, ...]]
    ) -> None:
        self.left = left
        self.right = right
        self.spec = join_spec(left.columns, right.columns, on)
        if not self.spec.join_columns:
            raise IvmError("cannot maintain a padded cross join incrementally")
        self.on = self.spec.join_columns
        self.left_probe = left.make_probe(self.on)
        self.right_probe = right.make_probe(self.on)
        self.columns = left.columns + tuple(
            c for c in right.columns if c not in left.columns
        )
        self.tables = left.tables | right.tables

    def delta(self, rt: _ReadRuntime) -> List[Signed]:
        out: List[Signed] = []
        spec = self.spec
        if self.left.tables & rt.touched:
            # ΔL ⟕ R_new: each signed left row matches or NULL-pads
            for sign, lrow in self.left.delta(rt):
                key = join_key(lrow, self.on)
                matches = (
                    self.right_probe(rt, key, False) if key is not None else []
                )
                for row in join_rows([lrow], matches, spec, True, False):
                    out.append((sign, row))
        if self.right.tables & rt.touched:
            by_key: Dict[Tuple[object, ...], List[Signed]] = {}
            for sign, rrow in self.right.delta(rt):
                key = join_key(rrow, self.on)
                if key is None:
                    continue  # NULL keys never join and LOJ never right-pads
                by_key.setdefault(key, []).append((sign, rrow))
            for key, signed_rows in by_key.items():
                # L_old ⋈ ΔR (term one already covered ΔL against R_new)
                left_old = self.left_probe(rt, key, True)
                if not left_old:
                    continue
                for sign, rrow in signed_rows:
                    for row in join_rows(left_old, [rrow], spec, False, False):
                        out.append((sign, row))
                # pad transitions: right match count crossing 0 ↔ positive
                m_new = len(self.right_probe(rt, key, False))
                m_old = m_new - sum(s for s, _ in signed_rows)
                if m_old < 0:
                    raise IvmError(
                        f"negative right-side multiplicity at join key {key!r}"
                    )
                pad_sign = 0
                if m_old == 0 and m_new > 0:
                    pad_sign = -1  # old left rows lose their NULL-padded row
                elif m_old > 0 and m_new == 0:
                    pad_sign = +1  # old left rows regain the NULL-padded row
                if pad_sign:
                    for row in join_rows(left_old, [], spec, True, False):
                        out.append((pad_sign, row))
        return out

    def make_probe(self, columns: Tuple[str, ...]) -> Probe:
        if tuple(columns) != tuple(self.on):
            raise IvmError(
                f"left-outer-join probe on {columns!r} does not match "
                f"join key {self.on!r}"
            )

        def probe(
            rt: _ReadRuntime, values: Tuple[object, ...], old: bool
        ) -> List[RowDict]:
            left_rows = self.left_probe(rt, values, old)
            if not left_rows:
                return []
            right_rows = self.right_probe(rt, values, old)
            return join_rows(left_rows, right_rows, self.spec, True, False)

        return probe


def _compile(query: Query, context: StoreContext) -> _Node:
    if isinstance(query, TableScan):
        return _TableNode(query.table_name, context.scan_columns(query))
    if isinstance(query, Select):
        return _SelectNode(_compile(query.source, context), query.condition)
    if isinstance(query, Project):
        return _ProjectNode(_compile(query.source, context), query.items)
    if isinstance(query, UnionAll):
        return _UnionNode(
            tuple(_compile(b, context) for b in query.branches),
            output_columns(query, context),
        )
    if isinstance(query, LeftOuterJoin):
        return _LojNode(
            _compile(query.left, context),
            _compile(query.right, context),
            query.on,
        )
    if isinstance(query, Join):
        return _JoinNode(
            _compile(query.left, context),
            _compile(query.right, context),
            query.on,
        )
    raise IvmError(f"no read-side delta rule for {type(query).__name__}")


def _construct_row(
    projection: Optional[Tuple[str, ...]], branch: UnfoldedBranch, row: RowDict
) -> object:
    """One row of :func:`~repro.query.unfold.construct_results`, kept in
    lockstep so maintained entries construct byte-identically."""
    if projection is None:
        return branch.constructor.construct(row)
    assigned = dict(branch.constructor.assignments)
    out: Dict[str, object] = {}
    for attr in projection:
        expr = assigned.get(attr)
        if expr is None:
            out[attr] = None
        elif isinstance(expr, Const):
            out[attr] = expr.value
        else:
            out[attr] = row.get(expr.name)
    return out


class _Entry:
    """One materialized answer: per-branch row bags plus the constructed
    results.  Immutable after publication — maintenance builds a copy."""

    __slots__ = (
        "values",
        "projection",
        "branches",
        "roots",
        "bags",
        "constructed",
        "tables",
        "fingerprint",
        "cost",
        "results",
        "maintains",
    )

    def __init__(
        self,
        values: Tuple[object, ...],
        projection: Optional[Tuple[str, ...]],
        branches: Tuple[UnfoldedBranch, ...],
        roots: Optional[Tuple[_Node, ...]],
        bags: List[Dict[RowKey, Tuple[RowDict, int]]],
        constructed: Dict[Tuple[int, RowKey], object],
        tables: FrozenSet[str],
        fingerprint: str,
        cost: int,
        results: Optional[List[object]],
        maintains: int = 0,
    ) -> None:
        self.values = values
        self.projection = projection
        self.branches = branches
        #: None = unmaintainable shape; serves warm reads, dies on writes
        self.roots = roots
        self.bags = bags
        self.constructed = constructed
        self.tables = tables
        self.fingerprint = fingerprint
        self.cost = cost
        self.results = results
        self.maintains = maintains

    @property
    def maintainable(self) -> bool:
        return self.roots is not None

    def rows_view(self) -> List[object]:
        rows = self.results
        if rows is None:
            # benign race: concurrent readers build identical lists over
            # the (immutable) constructed dict; last assignment wins
            rows = list(self.constructed.values())
            self.results = rows
        return rows


def build_entry(
    plan,
    values: Tuple[object, ...],
    schema: StoreSchema,
    state: StoreState,
    fingerprint: str,
    executed_rows: Optional[List[object]],
) -> _Entry:
    """Materialize one bound plan over *state*.

    The per-branch bags are seeded by a bag evaluation of the bound
    branch queries with the reference interpreter — the same operator
    semantics the delta rules mirror, which is what licenses maintained
    support to track :func:`evaluate_query`'s dedup exactly.  When the
    executing backend already produced the constructed rows they are
    adopted verbatim (*executed_rows*), so a pure-read workload returns
    lists identical to re-execution.
    """
    bound = plan.bind(values)
    context = StoreContext(state)
    try:
        roots: Optional[Tuple[_Node, ...]] = tuple(
            _compile(branch.store_query, StoreContext(StoreState(schema)))
            for branch in bound.branches
        )
    except IvmError:
        roots = None
    projection = plan.shape.projection
    bags: List[Dict[RowKey, Tuple[RowDict, int]]] = []
    constructed: Dict[Tuple[int, RowKey], object] = {}
    cost = 0
    for bi, branch in enumerate(bound.branches):
        per: Dict[RowKey, Tuple[RowDict, int]] = {}
        for row in evaluate_query_bag(branch.store_query, context):
            key = _dedup_key(row)
            slot = per.get(key)
            if slot is None:
                per[key] = (row, 1)
            else:
                per[key] = (slot[0], slot[1] + 1)
        bags.append(per)
        for key, (row, _count) in per.items():
            constructed[(bi, key)] = _construct_row(projection, branch, row)
            cost += len(row)
    results = (
        list(executed_rows)
        if executed_rows is not None
        else list(constructed.values())
    )
    return _Entry(
        values=values,
        projection=projection,
        branches=bound.branches,
        roots=roots,
        bags=bags,
        constructed=constructed,
        tables=plan.tables,
        fingerprint=fingerprint,
        cost=cost,
        results=results,
    )


def _maintained_entry(entry: _Entry, rt: _ReadRuntime, fingerprint: str) -> _Entry:
    """A copy of *entry* with the delta applied — O(|Δ|) plus the
    copy-on-write of the touched dicts.  Raises :class:`IvmError` when a
    multiplicity invariant breaks (the caller invalidates instead)."""
    if entry.roots is None:
        raise IvmError("entry shape is not maintainable")
    constructed = dict(entry.constructed)
    bags: List[Dict[RowKey, Tuple[RowDict, int]]] = []
    cost = entry.cost
    projection = entry.projection
    for bi, (root, bag, branch) in enumerate(
        zip(entry.roots, entry.bags, entry.branches)
    ):
        if not (root.tables & rt.touched):
            bags.append(bag)  # untouched branch: share the bag
            continue
        signed = root.delta(rt)
        if not signed:
            bags.append(bag)
            continue
        per = dict(bag)
        for sign, row in signed:
            key = _dedup_key(row)
            slot = per.get(key)
            count = (slot[1] if slot is not None else 0) + sign
            if count < 0:
                raise IvmError(
                    "negative multiplicity in a maintained result bag"
                )
            if count == 0:
                if slot is not None:
                    del per[key]
                    constructed.pop((bi, key), None)
                    cost -= len(slot[0])
            elif slot is None:
                per[key] = (row, count)
                constructed[(bi, key)] = _construct_row(projection, branch, row)
                cost += len(row)
            else:
                per[key] = (slot[0], count)
        bags.append(per)
    return _Entry(
        values=entry.values,
        projection=projection,
        branches=entry.branches,
        roots=entry.roots,
        bags=bags,
        constructed=constructed,
        tables=entry.tables,
        fingerprint=fingerprint,
        cost=cost,
        results=None,  # rebuilt lazily from the constructed dict
        maintains=entry.maintains + 1,
    )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class ResultCacheStats:
    """Counters of the result tier's life so far (cumulative across
    epochs: successors carry them forward like the plan cache does)."""

    hits: int = 0
    misses: int = 0
    maintained: int = 0
    invalidated: int = 0
    fallbacks: int = 0
    evictions: int = 0
    #: reads that found an entry stamped with a different epoch
    #: fingerprint — must stay 0; the regression gate asserts on it
    validation_failures: int = 0
    entries: int = 0
    cost: int = 0
    budget: int = 0

    def __str__(self) -> str:
        return (
            f"ResultCacheStats(hits={self.hits}, misses={self.misses}, "
            f"maintained={self.maintained}, invalidated={self.invalidated}, "
            f"fallbacks={self.fallbacks}, evictions={self.evictions}, "
            f"validation_failures={self.validation_failures}, "
            f"entries={self.entries}, cost={self.cost}/{self.budget})"
        )


class ResultCache:
    """Cost-bounded LRU of materialized query answers, one per epoch.

    Thread-safe for concurrent lookups and populations; the write paths
    never mutate a published cache — they derive a successor
    (:meth:`successor_for_delta` / :meth:`successor_for_tables` /
    :meth:`successor`) off to the side and publish it with the epoch
    swap, exactly like the plan cache.
    """

    def __init__(self, budget: int = DEFAULT_RESULT_BUDGET) -> None:
        self.budget = budget
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        #: plan keys whose shapes failed to materialize (e.g. a query the
        #: interpreter cannot bag-evaluate); retrying every miss would
        #: pay the failure cost forever
        self._unsupported: set = set()
        self._cost = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.maintained = 0
        self.invalidated = 0
        self.fallbacks = 0
        self.evictions = 0
        self.validation_failures = 0

    @property
    def enabled(self) -> bool:
        return self.budget > 0

    # -- keying --------------------------------------------------------
    @staticmethod
    def _full_key(key: Tuple, values: Tuple[object, ...]) -> Optional[Tuple]:
        full = (key, values)
        try:
            hash(full)
        except TypeError:
            return None  # unhashable constants: bypass the tier
        return full

    # -- reading -------------------------------------------------------
    def lookup(
        self, key: Tuple, values: Tuple[object, ...], fingerprint: str
    ) -> Optional[List[object]]:
        """The cached answer, or None.  Every served answer is validated
        against the epoch fingerprint — a mismatch can only mean a carry
        bug, and it is surfaced as a counter, never as a stale read."""
        if not self.enabled:
            return None
        full = self._full_key(key, values)
        if full is None:
            return None
        with self._lock:
            entry = self._entries.get(full)
            if entry is None:
                self.misses += 1
                return None
            if entry.fingerprint != fingerprint:
                self.validation_failures += 1
                self.invalidated += 1
                self.misses += 1
                del self._entries[full]
                self._cost -= entry.cost
                return None
            self.hits += 1
            self._entries.move_to_end(full)
        return list(entry.rows_view())

    def has(self, key: Tuple, values: Tuple[object, ...]) -> bool:
        full = self._full_key(key, values)
        if full is None:
            return False
        with self._lock:
            return full in self._entries

    # -- population ----------------------------------------------------
    def populate(
        self,
        key: Tuple,
        values: Tuple[object, ...],
        plan,
        schema: StoreSchema,
        state: StoreState,
        fingerprint: str,
        executed_rows: Optional[List[object]] = None,
    ) -> bool:
        """Materialize and insert one entry (no-op when present/disabled)."""
        if not self.enabled:
            return False
        full = self._full_key(key, values)
        if full is None:
            return False
        with self._lock:
            if full in self._entries or key in self._unsupported:
                return False
        try:
            entry = build_entry(
                plan, values, schema, state, fingerprint, executed_rows
            )
        except (IvmError, EvaluationError):
            with self._lock:
                self.fallbacks += 1
                self._unsupported.add(key)
            return False
        if entry.cost > self.budget:
            with self._lock:
                self.evictions += 1  # too large to ever hold: count and skip
            return False
        with self._lock:
            if full in self._entries:
                return False
            self._entries[full] = entry
            self._cost += entry.cost
            self._evict_over_budget()
        return True

    def _evict_over_budget(self) -> None:
        while self._cost > self.budget and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._cost -= entry.cost
            self.evictions += 1

    # -- successors (write paths) --------------------------------------
    def _clone_empty(self) -> "ResultCache":
        clone = ResultCache(self.budget)
        clone.hits = self.hits
        clone.misses = self.misses
        clone.maintained = self.maintained
        clone.invalidated = self.invalidated
        clone.fallbacks = self.fallbacks
        clone.evictions = self.evictions
        clone.validation_failures = self.validation_failures
        clone._unsupported = set(self._unsupported)
        return clone

    def empty_successor(self) -> "ResultCache":
        """A fresh cache carrying the counters: for ``undo`` and
        ``replace_contents``, where the data moves wholesale and no
        table-scoped argument can keep any entry valid."""
        with self._lock:
            clone = self._clone_empty()
            clone.invalidated += len(self._entries)
        return clone

    def successor_for_delta(
        self, delta: StoreDelta, state: StoreState, fingerprint: str
    ) -> "ResultCache":
        """The next epoch's cache after a data-only incremental write.

        Untouched entries are carried by reference; touched maintainable
        entries are rebuilt copy-on-write through the delta rules;
        everything else is invalidated.  *state* must be the post-delta
        store state and *fingerprint* the (unchanged) epoch fingerprint.
        """
        with self._lock:
            clone = self._clone_empty()
            items = list(self._entries.items())
        rt = _ReadRuntime(delta, state)
        touched = rt.touched
        for full, entry in items:
            if not (entry.tables & touched):
                clone._entries[full] = entry
                clone._cost += entry.cost
                continue
            if not entry.maintainable:
                clone.invalidated += 1
                continue
            try:
                maintained = _maintained_entry(entry, rt, fingerprint)
            except (IvmError, EvaluationError):
                clone.fallbacks += 1
                clone.invalidated += 1
                continue
            clone._entries[full] = maintained
            clone._cost += maintained.cost
            clone.maintained += 1
        clone._evict_over_budget()
        return clone

    def successor_for_tables(
        self, tables, fingerprint: str
    ) -> "ResultCache":
        """The next epoch's cache after a whole-state save: entries whose
        branches scan a written table are dropped, the rest carry."""
        written = frozenset(tables)
        with self._lock:
            clone = self._clone_empty()
            for full, entry in self._entries.items():
                if entry.tables & written or entry.fingerprint != fingerprint:
                    clone.invalidated += 1
                    continue
                clone._entries[full] = entry
                clone._cost += entry.cost
        return clone

    def successor(self, delta, mapping, fingerprint: str) -> "ResultCache":
        """The next epoch's cache after an SMO batch: delta-scoped
        invalidation by touched sets and tables, exactly the
        :meth:`PlanCache.invalidate` discipline.  Survivors are restamped
        with the evolved fingerprint — their sets and tables are provably
        outside the batch's touched neighborhood, so their data and
        model slice are unchanged."""
        raw = delta.touched()
        hood = delta.touched_neighborhood(mapping)
        touched_sets = set(raw.sets) | set(hood.sets)
        touched_tables = set(raw.tables) | set(hood.tables)
        schema = (
            mapping.client_schema
            if hasattr(mapping, "client_schema")
            else mapping
        )
        with self._lock:
            clone = self._clone_empty()
            clone._unsupported = set()  # shapes may become maintainable
            for full, entry in self._entries.items():
                set_name = full[0][0]
                if (
                    set_name in touched_sets
                    or not schema.has_entity_set(set_name)
                    or (entry.tables & touched_tables)
                ):
                    clone.invalidated += 1
                    continue
                if entry.fingerprint != fingerprint:
                    entry = _Entry(
                        values=entry.values,
                        projection=entry.projection,
                        branches=entry.branches,
                        roots=entry.roots,
                        bags=entry.bags,
                        constructed=entry.constructed,
                        tables=entry.tables,
                        fingerprint=fingerprint,
                        cost=entry.cost,
                        results=entry.results,
                        maintains=entry.maintains,
                    )
                clone._entries[full] = entry
                clone._cost += entry.cost
        return clone

    # -- bookkeeping ---------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.invalidated += len(self._entries)
            self._entries.clear()
            self._unsupported.clear()
            self._cost = 0

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self.hits,
                misses=self.misses,
                maintained=self.maintained,
                invalidated=self.invalidated,
                fallbacks=self.fallbacks,
                evictions=self.evictions,
                validation_failures=self.validation_failures,
                entries=len(self._entries),
                cost=self._cost,
                budget=self.budget,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __str__(self) -> str:
        return f"ResultCache({self.stats()})"
