"""The query-serving fast path: parameterized plans, cached per shape.

The paper amortizes *compilation* so the compiled views can serve queries
cheaply; this module amortizes *query translation* the same way.  Every
:meth:`OrmSession.query` call used to re-run :func:`~repro.query.unfold.unfold`
(branch splitting, per-branch condition specialisation, simplification,
FALSE-branch pruning) and — on the SQLite backend — re-generate the SQL
text from scratch.  All of that work depends only on the query's *shape*,
not on the constants it compares against, so it is done once per shape and
reused across every concrete request:

1. **Parameter extraction** (:func:`parameterize`) splits an
   :class:`EntityQuery` into a constant-free shape plus a bound-parameter
   vector: each comparison constant is replaced by a :class:`Param`
   placeholder.  Constants that can change the *plan itself* are left
   inline and become part of the shape:

   * constants compared against attributes some view branch pins to a
     ``Const`` (the specialisation pass folds those atoms to TRUE/FALSE
     by *value*), and
   * ``None`` constants (the SQL generator emits different text for
     NULL comparisons).

   Everything else is plan-neutral: specialisation only renames columns
   or folds on attribute *membership*, and :func:`~repro.algebra.simplify`
   is purely syntactic, so a plan built over placeholders is valid for
   every binding.

2. A :class:`CachedPlan` holds the unfolded branch set for one shape and,
   lazily, the compiled parameterized SQL per branch.  Binding a parameter
   vector substitutes placeholder atoms (hash-consing keeps untouched
   subtrees identity-shared) or maps placeholder slots of the compiled
   statement's parameter tuple.

3. The :class:`PlanCache` is an LRU keyed by ``(set name, model-slice
   fingerprint, shape fingerprint)``.  The model-slice fingerprint covers
   exactly what unfolding and execution read — the set's query view, the
   client-schema slice of the set, and the store tables the view scans —
   so two structurally identical queries share one plan, and a plan can
   only ever be served against the model state it was built for.

4. **Delta-scoped invalidation** (:meth:`PlanCache.invalidate`): on
   ``evolve``/``evolve_many``/``undo`` the session hands the composed
   :class:`~repro.incremental.delta.MappingDelta` over; only plans whose
   entity set or scanned tables intersect the delta's touched
   neighborhood are evicted.  Plans over untouched sets survive schema
   evolution — the paper's neighborhood principle applied to the serving
   side.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.conditions import Comparison, Condition
from repro.algebra.constructors import Constructor
from repro.algebra.queries import Const, Query, Select, TableScan
from repro.backend.sqlgen import CompiledSql, SqlCompiler
from repro.containment.cache import client_slice_tokens, fingerprint
from repro.errors import EvaluationError
from repro.query.language import EntityQuery
from repro.query.unfold import (
    UnfoldedBranch,
    UnfoldedQuery,
    _ctor_branches,
    construct_results,
    unfold,
)
from repro.relational.schema import StoreSchema


@dataclass(frozen=True)
class Param:
    """A placeholder for an extracted constant: its slot in the vector."""

    index: int

    def __str__(self) -> str:
        return f"${self.index}"


def pinned_attrs(constructor: Constructor) -> FrozenSet[str]:
    """Attributes some branch of *constructor* pins to a constant.

    Comparison atoms over these fold to TRUE/FALSE by constant *value*
    during branch specialisation, so their constants must stay inline in
    the shape (they select the plan, they don't parameterize it).
    """
    pinned = set()
    for _, leaf in _ctor_branches(constructor):
        for attr, expr in leaf.assignments:
            if isinstance(expr, Const):
                pinned.add(attr)
    return frozenset(pinned)


def parameterize(
    query: EntityQuery, inline_attrs: FrozenSet[str] = frozenset()
) -> Tuple[EntityQuery, Tuple[object, ...]]:
    """Split *query* into a constant-free shape and its parameter vector.

    Placeholders are numbered in deterministic construction order, so
    structurally identical queries always produce the identical shape.
    ``None`` constants and constants over *inline_attrs* stay in the shape.
    """
    values: List[object] = []

    def extract(node: Condition) -> Condition:
        if (
            isinstance(node, Comparison)
            and node.const is not None
            and not isinstance(node.const, Param)
            and node.attr not in inline_attrs
        ):
            values.append(node.const)
            return Comparison(node.attr, node.op, Param(len(values) - 1))
        return node

    shape_condition = query.condition.transform(extract)
    shape = EntityQuery(query.set_name, shape_condition, query.projection)
    return shape, tuple(values)


def bind_condition(condition: Condition, values: Tuple[object, ...]) -> Condition:
    """Substitute concrete values for every :class:`Param` placeholder."""

    def substitute(node: Condition) -> Condition:
        if isinstance(node, Comparison) and isinstance(node.const, Param):
            return Comparison(node.attr, node.op, values[node.const.index])
        return node

    return condition.transform(substitute)


# ---------------------------------------------------------------------------
# Cached plans
# ---------------------------------------------------------------------------

@dataclass
class CachedPlan:
    """One shape's translation, reusable across parameter bindings."""

    shape: EntityQuery
    unfolded: UnfoldedQuery
    param_count: int
    #: store tables the surviving branches scan (invalidation granule)
    tables: FrozenSet[str]
    executions: int = 0
    _sql: Optional[Tuple[CompiledSql, ...]] = field(default=None, repr=False)
    _physical: Optional[object] = field(default=None, repr=False)

    def bind(self, values: Tuple[object, ...]) -> UnfoldedQuery:
        """The concrete :class:`UnfoldedQuery` for one parameter vector."""
        if len(values) != self.param_count:
            raise EvaluationError(
                f"plan expects {self.param_count} parameter(s), got {len(values)}"
            )
        if not self.param_count:
            return self.unfolded
        branches = []
        for branch in self.unfolded.branches:
            source = branch.store_query
            if isinstance(source, Select):
                bound = bind_condition(source.condition, values)
                store_query: Query = (
                    source
                    if bound is source.condition
                    else Select(source.source, bound)
                )
            else:  # unfold always emits Select roots; stay safe regardless
                store_query = source
            branches.append(
                UnfoldedBranch(store_query, branch.constructor, branch.concrete_type)
            )
        return UnfoldedQuery(self.unfolded.source, tuple(branches))

    def sql(self, schema: StoreSchema) -> Tuple[CompiledSql, ...]:
        """Per-branch parameterized SQL, compiled once and reused.

        Placeholders travel *inside* the compiled parameter tuple (the SQL
        generator treats them as opaque constants), so the text is fixed
        and binding is a tuple rewrite — no string work per query.
        """
        if self._sql is None:
            compiler = SqlCompiler(schema)
            self._sql = tuple(
                compiler.compile(branch.store_query)
                for branch in self.unfolded.branches
            )
        return self._sql

    def physical(self, schema: StoreSchema):
        """The compiled physical-plan set for interpreter-style backends
        (``compiles_plans``), lowered once per plan and reused across
        bindings — :class:`Param` placeholders compile into the predicate
        closures, so binding is just passing the vector along.
        """
        if self._physical is None:
            from repro.backend.physical import compile_plan

            self._physical = compile_plan(
                [branch.store_query for branch in self.unfolded.branches],
                schema,
            )
        return self._physical

    def bound_sql(
        self, schema: StoreSchema, values: Tuple[object, ...]
    ) -> List[Tuple[UnfoldedBranch, CompiledSql, Tuple[object, ...]]]:
        """(branch, compiled statement, concrete parameters) triples."""
        if len(values) != self.param_count:
            raise EvaluationError(
                f"plan expects {self.param_count} parameter(s), got {len(values)}"
            )
        triples = []
        for branch, compiled in zip(self.unfolded.branches, self.sql(schema)):
            actual = tuple(
                values[p.index] if isinstance(p, Param) else p
                for p in compiled.params
            )
            triples.append((branch, compiled, actual))
        return triples

    def execute(self, backend, values: Tuple[object, ...]) -> List[object]:
        """Run the plan on *backend* with *values* bound.

        Backends that prepare SQL (``prepares_sql``) execute the cached
        parameterized statements through their statement cache; backends
        that compile physical plans (``compiles_plans``) run the lowered
        closure plan; the fallback binds the branch conditions and
        re-interprets the algebra.
        """
        self.executions += 1
        if getattr(backend, "prepares_sql", False):
            return construct_results(
                self.shape.projection,
                (
                    (branch, backend.run_compiled(compiled, params))
                    for branch, compiled, params in self.bound_sql(
                        backend.schema, values
                    )
                ),
            )
        if getattr(backend, "compiles_plans", False):
            if len(values) != self.param_count:
                raise EvaluationError(
                    f"plan expects {self.param_count} parameter(s), "
                    f"got {len(values)}"
                )
            plan_set = self.physical(backend.schema)
            branch_rows = backend.run_compiled_plan(plan_set, values)
            return construct_results(
                self.shape.projection,
                zip(self.unfolded.branches, branch_rows),
            )
        return self.bind(values).run_on(backend)

    def explain(self, values: Tuple[object, ...]) -> str:
        """The Entity-SQL text of the bound plan (what execute runs)."""
        return self.bind(values).to_sql()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class PlanCacheStats:
    """Counters of the plan cache's life so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0

    def __str__(self) -> str:
        return (
            f"PlanCacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations}, "
            f"entries={self.entries})"
        )


@dataclass
class ServingStats:
    """One report over every cache on the serving path."""

    backend: str
    plans: PlanCacheStats
    statements: Optional[object] = None  # StatementCacheStats on SQLite
    indexes: Optional[object] = None  # IndexStats on the memory backend
    epoch: Optional[object] = None  # EngineStats from the epoch engine
    writeplans: Optional[object] = None  # WriteplanCacheStats (IVM writes)
    validation: Optional[object] = None  # CacheStats (validation L1 + L2)
    results: Optional[object] = None  # ResultCacheStats (materialized tier)

    def __str__(self) -> str:
        lines = [
            f"serving on {self.backend}:",
            f"  plan cache      : hits={self.plans.hits} misses={self.plans.misses}"
            f" evictions={self.plans.evictions}"
            f" invalidations={self.plans.invalidations}"
            f" entries={self.plans.entries}",
        ]
        if self.statements is not None:
            s = self.statements
            lines.append(
                f"  statement cache : hits={s.hits} misses={s.misses}"
                f" evictions={s.evictions} entries={s.entries}"
            )
            select_hits = getattr(s, "select_hits", None)
            if select_hits is not None:
                lines.append(
                    f"    select        : hits={s.select_hits}"
                    f" misses={s.select_misses}"
                )
                lines.append(
                    f"    dml           : hits={s.dml_hits}"
                    f" misses={s.dml_misses}"
                )
        if self.indexes is not None:
            i = self.indexes
            lines.append(
                f"  physical indexes: builds={i.builds} hits={i.hits}"
                f" invalidations={i.invalidations} entries={i.entries}"
                f" compiled_runs={i.compiled_runs}"
            )
        if self.epoch is not None:
            e = self.epoch
            lines.append(
                f"  epoch engine    : epoch={e.epoch_id}"
                f" published={e.epochs_published} queries={e.queries}"
                f" retries={e.read_retries}"
                f" serialized={e.serialized_reads} torn={e.torn_reads_served}"
            )
        if self.writeplans is not None:
            w = self.writeplans
            lines.append(
                f"  write plans     : hits={w.hits} misses={w.misses}"
                f" compiled={w.compiled}"
                f" invalidations={w.invalidations} entries={w.entries}"
            )
        if self.validation is not None:
            v = self.validation
            line = (
                f"  validation cache: hits={v.hits} misses={v.misses}"
                f" entries={v.entries}"
            )
            if getattr(v, "l2_hits", 0) or getattr(v, "l2_misses", 0):
                line += f" l2_hits={v.l2_hits} l2_misses={v.l2_misses}"
            lines.append(line)
        if self.results is not None:
            r = self.results
            lines.append(
                f"  result cache    : hits={r.hits} misses={r.misses}"
                f" maintained={r.maintained} invalidated={r.invalidated}"
                f" fallbacks={r.fallbacks} evictions={r.evictions}"
                f" stale={r.validation_failures}"
                f" entries={r.entries} cost={r.cost}/{r.budget}"
            )
        return "\n".join(lines)


class PlanCache:
    """LRU-bounded, shape-keyed cache of :class:`CachedPlan` entries.

    Thread-safe; held by one :class:`~repro.session.OrmSession`.  The
    session routes every model mutation through
    :meth:`invalidate`, which is what licenses the per-set model-slice
    fingerprints to be cached between mutations (recomputing them per
    query would cost more than the unfold they save).
    """

    def __init__(self, max_plans: int = 256) -> None:
        self.max_plans = max_plans
        self._plans: "OrderedDict[Tuple[str, str, str], CachedPlan]" = OrderedDict()
        #: set name -> (slice fingerprint, inline attrs, scanned tables)
        self._set_meta: Dict[str, Tuple[str, FrozenSet[str], FrozenSet[str]]] = {}
        #: (set name, shape condition, projection) -> full cache key.
        #: Hash-consing makes the parameterized shape condition the *same*
        #: interned object for every binding of one shape, so this lookup
        #: skips re-fingerprinting the shape on the steady-state hot path.
        #: Entries are only trusted if their key is still in ``_plans``;
        #: eviction and invalidation prune them.
        self._shape_index: Dict[Tuple, Tuple[str, str, str]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- keying --------------------------------------------------------
    def _meta(self, model, set_name: str):
        with self._lock:
            meta = self._set_meta.get(set_name)
        if meta is not None:
            return meta
        schema = model.client_schema
        root = schema.entity_set(set_name).root_type
        view = model.views.query_view(root)
        tables = frozenset(
            node.table_name
            for node in view.query.walk()
            if isinstance(node, TableScan)
        )
        slice_fp = fingerprint(
            view,
            client_slice_tokens(schema, sets=[set_name]),
            tuple(model.store_schema.table(name) for name in sorted(tables)),
        )
        meta = (slice_fp, pinned_attrs(view.constructor), tables)
        with self._lock:
            self._set_meta[set_name] = meta
        return meta

    # -- lookup --------------------------------------------------------
    def plan_for(self, model, query: EntityQuery) -> Tuple[CachedPlan, Tuple[object, ...]]:
        """The (possibly cached) plan for *query* plus its bound parameters."""
        plan, values, _key = self.plan_with_key(model, query)
        return plan, values

    def plan_with_key(
        self, model, query: EntityQuery
    ) -> Tuple[CachedPlan, Tuple[object, ...], Tuple[str, str, str]]:
        """:meth:`plan_for` plus the full cache key — the result tier keys
        its entries with it, so both caches invalidate in lockstep."""
        slice_fp, inline_attrs, tables = self._meta(model, query.set_name)
        shape, values = parameterize(query, inline_attrs)
        index_key = (query.set_name, shape.condition, shape.projection)
        with self._lock:
            key = self._shape_index.get(index_key)
            if key is not None and key[1] == slice_fp:
                plan = self._plans.get(key)
                if plan is not None:
                    self.hits += 1
                    self._plans.move_to_end(key)
                    return plan, values, key
        key = (query.set_name, slice_fp, fingerprint(shape))
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                self._shape_index[index_key] = key
                return plan, values, key
        unfolded = unfold(shape, model.views, model.client_schema)
        plan = CachedPlan(shape, unfolded, len(values), tables)
        with self._lock:
            self.misses += 1
            if key not in self._plans:
                self._plans[key] = plan
                evicted = False
                while len(self._plans) > self.max_plans:
                    self._plans.popitem(last=False)
                    self.evictions += 1
                    evicted = True
                if evicted:
                    self._prune_index()
            plan = self._plans[key]
            self._shape_index[index_key] = key
        return plan, values, key

    def _prune_index(self) -> None:
        """Drop shape-index entries whose plan is gone (lock held)."""
        self._shape_index = {
            ik: k for ik, k in self._shape_index.items() if k in self._plans
        }

    # -- invalidation --------------------------------------------------
    def invalidate(self, delta, mapping) -> int:
        """Evict exactly the plans a :class:`MappingDelta` can invalidate.

        A plan is stale iff the delta touched its entity set or a store
        table its branches scan; both the raw touched region and the
        resolved neighborhood are consulted (raw names cover elements the
        delta *dropped*, which no longer resolve).  Everything else keeps
        serving — the neighborhood principle on the serving side.
        """
        raw = delta.touched()
        hood = delta.touched_neighborhood(mapping)
        touched_sets = set(raw.sets) | set(hood.sets)
        touched_tables = set(raw.tables) | set(hood.tables)
        schema = mapping.client_schema if hasattr(mapping, "client_schema") else mapping
        evicted = 0
        with self._lock:
            for set_name in list(self._set_meta):
                if set_name in touched_sets or not schema.has_entity_set(set_name):
                    del self._set_meta[set_name]
            for key in list(self._plans):
                set_name = key[0]
                plan = self._plans[key]
                if (
                    set_name in touched_sets
                    or not schema.has_entity_set(set_name)
                    or (plan.tables & touched_tables)
                ):
                    del self._plans[key]
                    evicted += 1
            if evicted:
                self._prune_index()
            self.invalidations += evicted
        return evicted

    def successor(self, delta=None, mapping=None) -> "PlanCache":
        """The next epoch's cache: surviving plans carried over.

        Copies every entry (plans are shared — :class:`CachedPlan` lazy
        compilation races are benign because results are deterministic)
        into a fresh cache, carries the cumulative counters forward so
        hit rates across epochs stay observable, then applies
        delta-scoped invalidation for the evolution being published.
        The *source* cache is left untouched: readers still serving the
        old epoch keep hitting their own plans.
        """
        clone = PlanCache(self.max_plans)
        with self._lock:
            clone._plans = OrderedDict(self._plans)
            clone._set_meta = dict(self._set_meta)
            clone._shape_index = dict(self._shape_index)
            clone.hits = self.hits
            clone.misses = self.misses
            clone.evictions = self.evictions
            clone.invalidations = self.invalidations
        if delta is not None:
            clone.invalidate(delta, mapping)
        return clone

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._set_meta.clear()
            self._shape_index.clear()

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._plans),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __str__(self) -> str:
        return f"PlanCache({self.stats()})"
