"""Update translation: propagating client-state changes to the store.

Section 1.1: "An update U expressed on the object-oriented view of data
must be translated into updates on the relational view that have exactly
the effect of U and preserve database consistency."  With compiled update
views V this is purely functional: the store effect of changing the
client state from c to c′ is the row-set difference

    inserts = V(c′) ∖ V(c)        deletes = V(c) ∖ V(c′)

per table, which is what an ORM's SaveChanges emits as INSERT/DELETE (an
UPDATE being a delete+insert of rows sharing a key).  This module computes
those deltas and applies them, and classifies key-preserving pairs as
updates for readability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.edm.instances import ClientState
from repro.mapping.roundtrip import apply_update_views
from repro.mapping.views import CompiledViews
from repro.relational.instances import Row, StoreState, row_values
from repro.relational.schema import StoreSchema


@dataclass
class TableDelta:
    """Row changes for one table, with key-preserving pairs as updates."""

    table: str
    inserts: List[Row] = field(default_factory=list)
    deletes: List[Row] = field(default_factory=list)
    #: (old_row, new_row) pairs sharing the primary key
    updates: List[Tuple[Row, Row]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.inserts or self.deletes or self.updates)

    def statement_count(self) -> int:
        return len(self.inserts) + len(self.deletes) + len(self.updates)

    def __str__(self) -> str:
        return (
            f"{self.table}: +{len(self.inserts)} -{len(self.deletes)} "
            f"~{len(self.updates)}"
        )


@dataclass
class StoreDelta:
    """The complete store effect of one client-state change."""

    tables: Dict[str, TableDelta] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return all(d.empty for d in self.tables.values())

    def statement_count(self) -> int:
        return sum(d.statement_count() for d in self.tables.values())

    def __str__(self) -> str:
        parts = [str(d) for d in self.tables.values() if not d.empty]
        return "StoreDelta(" + "; ".join(parts) + ")" if parts else "StoreDelta(empty)"


def translate_update(
    views: CompiledViews,
    old_state: ClientState,
    new_state: ClientState,
    store_schema: StoreSchema,
) -> StoreDelta:
    """The store delta realising the client change old_state → new_state."""
    old_store = apply_update_views(views, old_state, store_schema)
    new_store = apply_update_views(views, new_state, store_schema)
    return diff_store_states(old_store, new_store)


def classify_rows(table, fresh, gone) -> TableDelta:
    """Classify changed rows of one table into inserts/deletes/updates.

    Rows of *fresh* and *gone* sharing a primary key become update pairs.
    Shared by :func:`diff_store_states` and the incremental write path
    (:mod:`repro.ivm.writeplan`), so both produce identically classified
    and ordered DML for the same row changes.
    """

    def key_of(row: Row) -> Tuple[object, ...]:
        return row_values(row, table.primary_key)

    gone_by_key = {key_of(r): r for r in gone}
    table_delta = TableDelta(table.name)
    # sort by repr: rows may mix None with values of any type
    for row in sorted(fresh, key=repr):
        old_row = gone_by_key.pop(key_of(row), None)
        if old_row is not None:
            table_delta.updates.append((old_row, row))
        else:
            table_delta.inserts.append(row)
    table_delta.deletes.extend(sorted(gone_by_key.values(), key=repr))
    return table_delta


def diff_store_states(old: StoreState, new: StoreState) -> StoreDelta:
    """Per-table row diff, pairing rows that share a primary key."""
    delta = StoreDelta()
    table_names = {t.name for t in old.populated_tables()} | {
        t.name for t in new.populated_tables()
    }
    for table_name in sorted(table_names):
        table = new.schema.table(table_name)
        old_rows: Set[Row] = set(old.rows(table_name))
        new_rows: Set[Row] = set(new.rows(table_name))
        table_delta = classify_rows(table, new_rows - old_rows, old_rows - new_rows)
        if not table_delta.empty:
            delta.tables[table_name] = table_delta
    return delta


def apply_delta(store_state: StoreState, delta: StoreDelta) -> StoreState:
    """A new store state with *delta* applied (deletes, updates, inserts).

    Cost is O(|delta| + touched tables' rows): tables the delta does not
    touch share the input state's row storage by reference (see
    :meth:`StoreState.adopt_table`) instead of being copied row by row —
    that copy was the hidden O(n) that made incremental saves pay full
    re-materialization just to maintain the backend's state cache.
    """
    result = StoreState(store_state.schema)
    touched = {name for name, td in delta.tables.items() if not td.empty}
    for table in store_state.populated_tables():
        if table.name not in touched:
            result.adopt_table(store_state, table.name)
    for table_name in sorted(touched):
        table_delta = delta.tables[table_name]
        dead: Set[Row] = set(table_delta.deletes)
        dead.update(old for old, _ in table_delta.updates)
        # surviving rows were validated when first added; only the
        # delta's new rows go through add_row's domain checks
        result.carry_rows(store_state, table_name, dead)
        for row in table_delta.inserts:
            result.add_row(table_name, row)
        for _, row in table_delta.updates:
            result.add_row(table_name, row)
    return result


def to_sql(delta: StoreDelta) -> str:
    """Render the delta as INSERT/DELETE/UPDATE statements (display only)."""
    statements: List[str] = []
    for table_name, table_delta in delta.tables.items():
        for old, new in table_delta.updates:
            sets = ", ".join(
                f"{k} = {v!r}" for k, v in new if dict(old).get(k) != v
            )
            keys = " AND ".join(f"{k} = {v!r}" for k, v in old)
            statements.append(f"UPDATE {table_name} SET {sets} WHERE {keys};")
        for row in table_delta.deletes:
            keys = " AND ".join(f"{k} = {v!r}" for k, v in row)
            statements.append(f"DELETE FROM {table_name} WHERE {keys};")
        for row in table_delta.inserts:
            columns = ", ".join(k for k, _ in row)
            values = ", ".join(repr(v) for _, v in row)
            statements.append(
                f"INSERT INTO {table_name} ({columns}) VALUES ({values});"
            )
    return "\n".join(statements)
