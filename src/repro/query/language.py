"""A small client-level query language over entity sets.

Section 1.1: "A common way for an ORM to support query translation is to
express the mapping as a view definition ... A query over the
object-oriented schema can be implemented by view unfolding, which
replaces view references in the query by the view definition."

:class:`EntityQuery` is the object-side query: an entity set, a condition
in the fragment condition language (type atoms included), and an optional
projection.  It can be executed directly against a :class:`ClientState`
(the reference semantics) or translated to a store-level query by
:mod:`repro.query.unfold` and executed against the relational data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.conditions import Condition, TRUE, evaluate_condition
from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError


@dataclass(frozen=True)
class EntityQuery:
    """``SELECT [projection] FROM set_name WHERE condition``.

    ``projection=None`` returns whole entities; otherwise rows (dicts) of
    the named attributes.  An attribute may be absent for some matching
    entities (it belongs to a subtype); those entities contribute NULL,
    like Entity SQL's TREAT-less projection over a heterogeneous set.
    """

    set_name: str
    condition: Condition = TRUE
    projection: Optional[Tuple[str, ...]] = None

    def __str__(self) -> str:
        projected = ", ".join(self.projection) if self.projection else "*"
        return f"SELECT {projected} FROM {self.set_name} WHERE {self.condition}"


class _EntityContext:
    def __init__(self, entity: Entity, schema: ClientSchema) -> None:
        self.entity = entity
        self.schema = schema

    def attr_value(self, name: str):
        try:
            return self.entity[name]
        except EvaluationError:
            raise KeyError(name)

    def is_of(self, type_name: str, only: bool) -> bool:
        if only:
            return self.entity.concrete_type == type_name
        return type_name in self.schema.ancestors_or_self(self.entity.concrete_type)


def execute_on_client(
    query: EntityQuery, state: ClientState
) -> List[object]:
    """The reference semantics: evaluate the query on the client state.

    Returns entities (projection=None) or attribute-row dicts.
    """
    schema = state.schema
    matching = [
        entity
        for entity in state.entities(query.set_name)
        if evaluate_condition(query.condition, _EntityContext(entity, schema))
    ]
    if query.projection is None:
        return matching
    rows: List[Dict[str, object]] = []
    for entity in matching:
        row: Dict[str, object] = {}
        for attr in query.projection:
            try:
                row[attr] = entity[attr]
            except EvaluationError:
                row[attr] = None  # attribute of a different subtype
        rows.append(row)
    return rows
