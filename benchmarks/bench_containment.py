"""The NP-hard core in isolation: containment/cell-enumeration cost.

Two sweeps over the machinery the compilers are built on:

* store-cell enumeration vs the number of independent (nullable-column)
  conditions on one table — doubling per condition, the engine behind
  Figure 4's TPH curve;
* canonical-state containment vs the number of association sources in the
  update view being checked.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import IsNotNull
from repro.containment.spaces import StoreConditionSpace
from repro.edm.types import INT
from repro.relational.schema import Column, StoreSchema, Table


def _wide_table(n_columns: int) -> StoreSchema:
    columns = [Column("Id", INT, False)]
    columns += [Column(f"c{i}", INT, True) for i in range(n_columns)]
    return StoreSchema([Table("W", tuple(columns), ("Id",))])


@pytest.mark.parametrize("n_conditions", [4, 8, 12])
def test_store_cell_enumeration(benchmark, n_conditions):
    store = _wide_table(n_conditions)
    conditions = [IsNotNull(f"c{i}") for i in range(n_conditions)]

    def enumerate_cells():
        space = StoreConditionSpace(store, "W", conditions)
        vectors = space.truth_vectors(conditions)
        assert len(vectors) == 2 ** n_conditions
        return len(vectors)

    benchmark(enumerate_cells)


@pytest.mark.parametrize("m", [1, 2, 3, 4])
def test_containment_vs_association_sources(benchmark, m):
    """FK-style containment where the checked update view joins more and
    more association sources: one hub-and-rim TPH table at depth 1 and
    fan-out *m* — canonical-state count grows exponentially with m."""
    from repro.algebra.conditions import IsOf
    from repro.algebra.queries import Col, ProjItem, Project, Select, SetScan
    from repro.compiler import generate_views
    from repro.containment.checker import check_containment
    from repro.workloads.hub_rim import SET_NAME, TABLE_NAME, hub_rim_mapping

    mapping = hub_rim_mapping(1, m, "TPH")
    views = generate_views(mapping)
    schema = mapping.client_schema

    lhs = Project(
        Select(SetScan(SET_NAME), IsOf("Hub1")),
        (ProjItem("Id", Col("Id")),),
    )
    rhs = Project(
        views.update_view(TABLE_NAME).query, (ProjItem("Id", Col("Id")),)
    )

    def check():
        result = check_containment(lhs, rhs, schema)
        assert result.holds
        return result.states_checked

    benchmark(check)
