"""The NP-hard core in isolation: containment/cell-enumeration cost.

Three sweeps over the machinery the compilers are built on:

* store-cell enumeration vs the number of independent (nullable-column)
  conditions on one table — doubling per condition, the engine behind
  Figure 4's TPH curve;
* canonical-state containment vs the number of association sources in the
  update view being checked;
* the layered symbolic fast path vs the pure enumerator: full-mapping
  validation with ``symbolic=False`` (the PR-1 baseline), cold symbolic,
  and warm (cache-hit) re-validation, per workload.

``python benchmarks/bench_containment.py`` writes
``BENCH_containment.json`` with the symbolic sweep (discharge rate,
enumeration states avoided, cold/warm wall time); the pytest entry points
run the same comparisons at smoke scale for CI.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.algebra.conditions import IsNotNull
from repro.containment.spaces import StoreConditionSpace
from repro.edm.types import INT
from repro.relational.schema import Column, StoreSchema, Table


def _wide_table(n_columns: int) -> StoreSchema:
    columns = [Column("Id", INT, False)]
    columns += [Column(f"c{i}", INT, True) for i in range(n_columns)]
    return StoreSchema([Table("W", tuple(columns), ("Id",))])


@pytest.mark.parametrize("n_conditions", [4, 8, 12])
def test_store_cell_enumeration(benchmark, n_conditions):
    store = _wide_table(n_conditions)
    conditions = [IsNotNull(f"c{i}") for i in range(n_conditions)]

    def enumerate_cells():
        space = StoreConditionSpace(store, "W", conditions)
        vectors = space.truth_vectors(conditions)
        assert len(vectors) == 2 ** n_conditions
        return len(vectors)

    benchmark(enumerate_cells)


@pytest.mark.parametrize("m", [1, 2, 3, 4])
def test_containment_vs_association_sources(benchmark, m):
    """FK-style containment where the checked update view joins more and
    more association sources: one hub-and-rim TPH table at depth 1 and
    fan-out *m* — canonical-state count grows exponentially with m."""
    from repro.algebra.conditions import IsOf
    from repro.algebra.queries import Col, ProjItem, Project, Select, SetScan
    from repro.compiler import generate_views
    from repro.containment.checker import check_containment
    from repro.workloads.hub_rim import SET_NAME, TABLE_NAME, hub_rim_mapping

    mapping = hub_rim_mapping(1, m, "TPH")
    views = generate_views(mapping)
    schema = mapping.client_schema

    lhs = Project(
        Select(SetScan(SET_NAME), IsOf("Hub1")),
        (ProjItem("Id", Col("Id")),),
    )
    rhs = Project(
        views.update_view(TABLE_NAME).query, (ProjItem("Id", Col("Id")),)
    )

    def check():
        result = check_containment(lhs, rhs, schema)
        assert result.holds
        return result.states_checked

    benchmark(check)


# ---------------------------------------------------------------------------
# Symbolic fast path vs the pure enumerator
# ---------------------------------------------------------------------------

#: customer scale for the CI smoke entries (fast) vs the JSON sweep
#: (large enough that check compute dominates fingerprint overhead, which
#: is what warm re-validation actually saves).
CUSTOMER_SCALE_SMOKE = 0.07
CUSTOMER_SCALE_SWEEP = 0.25


def _workloads(customer_scale: float = CUSTOMER_SCALE_SMOKE) -> dict:
    from repro.workloads import customer_mapping, hub_rim_mapping

    return {
        "hub_rim_tpt": lambda: hub_rim_mapping(2, 2, "TPT"),
        "hub_rim_tph": lambda: hub_rim_mapping(2, 2, "TPH"),
        "customer": lambda: customer_mapping(scale=customer_scale),
    }


def _validation_stats(report) -> dict:
    return {
        "containment_checks": report.containment_checks,
        "symbolic_discharged": report.symbolic_discharged,
        "branches_discharged": report.branches_discharged,
        "branches_pruned": report.branches_pruned,
        "containment_states": report.containment_states,
        "counterexample_replays": report.counterexample_replays,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def run_workload(build_mapping) -> dict:
    """Baseline enumerator vs cold/warm symbolic validation of one mapping."""
    from repro.compiler import generate_views, validate_mapping
    from repro.containment import ValidationCache

    mapping = build_mapping()
    views = generate_views(mapping)

    baseline, baseline_s = _timed(
        lambda: validate_mapping(mapping, views, symbolic=False)
    )
    cache = ValidationCache()
    cold, cold_s = _timed(
        lambda: validate_mapping(mapping, views, cache=cache, symbolic=True)
    )
    warm, warm_s = _timed(
        lambda: validate_mapping(mapping, views, cache=cache, symbolic=True)
    )
    assert warm.cache_misses == 0, "warm re-validation must be hits-only"

    checks = cold.containment_checks or 1
    return {
        "enumerator_baseline": dict(
            _validation_stats(baseline), elapsed_s=round(baseline_s, 4)
        ),
        "symbolic_cold": dict(_validation_stats(cold), elapsed_s=round(cold_s, 4)),
        "symbolic_warm": dict(_validation_stats(warm), elapsed_s=round(warm_s, 4)),
        "discharge_rate": round(cold.symbolic_discharged / checks, 3),
        "states_avoided": baseline.containment_states - cold.containment_states,
        "cold_speedup_vs_enumerator": round(baseline_s / cold_s, 2) if cold_s else None,
        "warm_speedup_vs_cold": round(cold_s / warm_s, 1) if warm_s else None,
    }


def run_sweep() -> dict:
    from repro.algebra.conditions import intern_stats

    sweep = {
        name: run_workload(build)
        for name, build in _workloads(CUSTOMER_SCALE_SWEEP).items()
    }
    return {
        "workloads": sweep,
        "condition_interning": intern_stats(),
        "cpu_count": os.cpu_count(),
    }


@pytest.mark.parametrize("workload", sorted(_workloads()))
def test_symbolic_vs_enumerator_smoke(benchmark, workload):
    """Smoke entry for CI: identical verdicts, states never exceed the
    baseline, and the TPT/customer workloads discharge symbolically."""
    result = benchmark.pedantic(
        lambda: run_workload(_workloads()[workload]), rounds=1, iterations=1
    )
    cold = result["symbolic_cold"]
    baseline = result["enumerator_baseline"]
    assert cold["containment_checks"] == baseline["containment_checks"]
    assert cold["containment_states"] <= baseline["containment_states"]
    assert result["symbolic_warm"]["cache_misses"] == 0
    if workload in ("hub_rim_tpt", "customer"):
        assert cold["symbolic_discharged"] > 0
        assert result["states_avoided"] > 0


def main() -> None:
    result = run_sweep()
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_containment.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
