"""Incremental writes (IVM) vs whole-state SaveChanges.

The incremental write path (:mod:`repro.ivm`) exists for one reason:
``save_delta`` must cost O(|delta|), while the whole-state save it
replaces re-lowers the *entire* client state through the update views
and diffs the full store — O(|state|) per save, no matter how small the
edit.  This benchmark measures both paths on the same session at
10^4–10^6 store rows (the top size behind ``REPRO_FULL``), with the
same small update batch per save, and *verifies as it measures*: after
the timed incremental rounds, the store is checked byte-for-byte
against a whole-state lowering of the mirrored client state.

``python benchmarks/bench_incremental_writes.py`` writes
``BENCH_incremental_writes.json`` for both backends;
``scripts/check_serving_regression.py`` gates on a >= 5x speedup at the
10^5-row tier in CI.  The pytest entries run a 10^4-row smoke version
(equivalence assertions, no timing asserts).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.backend import create_backend
from repro.compiler import compile_mapping
from repro.edm import Entity
from repro.incremental import CompiledModel
from repro.ivm import DeltaScript, EntityOp
from repro.mapping.roundtrip import apply_update_views
from repro.session import OrmSession
from repro.workloads.chain import chain_mapping, entity_name, set_name

BACKENDS = ("memory", "sqlite")
CHAIN_TYPES = 4

SIZES = (10_000, 100_000)
if os.environ.get("REPRO_FULL"):
    SIZES = (10_000, 100_000, 1_000_000)

ROUNDS_WHOLE = 3
ROUNDS_INCREMENTAL = 7
OPS_PER_SAVE = 16
SMOKE = {"sizes": (10_000,), "rounds_whole": 2, "rounds_incremental": 3}


def _model() -> CompiledModel:
    mapping = chain_mapping(CHAIN_TYPES)
    return CompiledModel(mapping, compile_mapping(mapping, validate=False).views)


def _entity(index: int, row: int, tag: str) -> Entity:
    return Entity.of(
        entity_name(index),
        Id=row,
        EntityAtt2=f"a{tag}",
        EntityAtt3=f"b{row}",
        EntityAtt4=f"c{row % 97}",
    )


def _populated_session(model: CompiledModel, backend_name: str, rows: int) -> OrmSession:
    backend = create_backend(backend_name, model.store_schema)
    session = OrmSession(model, backend=backend)
    per_set = rows // CHAIN_TYPES
    with session.edit() as state:
        for index in range(1, CHAIN_TYPES + 1):
            for row in range(per_set):
                state.add_entity(set_name(index), _entity(index, row, str(row % 5)))
    return session


def _update_batch(per_set: int, round_no: int, ops: int):
    """A deterministic batch of *ops* entity rewrites, spread over all
    sets; the same batch drives both the whole-state and incremental
    measurements so the per-save work is identical."""
    batch = []
    for op in range(ops):
        index = (op % CHAIN_TYPES) + 1
        row = (round_no * 7919 + op * 104729) % per_set
        batch.append((index, row, _entity(index, row, f"r{round_no}.{op}")))
    return batch


def _measure(
    backend_name: str,
    rows: int,
    rounds_whole: int = ROUNDS_WHOLE,
    rounds_incremental: int = ROUNDS_INCREMENTAL,
) -> dict:
    model = _model()
    session = _populated_session(model, backend_name, rows)
    per_set = rows // CHAIN_TYPES
    try:
        # -- whole-state path: each save re-lowers and diffs everything
        scratch = session.load().embed_into(model.client_schema)
        whole_latencies = []
        for round_no in range(rounds_whole):
            for index, _row, entity in _update_batch(per_set, round_no, OPS_PER_SAVE):
                scratch.update_entity(set_name(index), entity)
            started = time.perf_counter()
            session.save(scratch)
            whole_latencies.append(time.perf_counter() - started)

        # -- incremental path: the same batch shape through save_delta
        mirror = session.load().embed_into(model.client_schema)
        incremental_latencies = []
        for round_no in range(100, 100 + rounds_incremental):
            ops = []
            for index, _row, entity in _update_batch(per_set, round_no, OPS_PER_SAVE):
                mirror.update_entity(set_name(index), entity)
                ops.append(EntityOp("update", set_name(index), entity=entity))
            script = DeltaScript(tuple(ops))
            started = time.perf_counter()
            session.save_delta(script)
            incremental_latencies.append(time.perf_counter() - started)

        # verify as we measure: the incrementally-maintained store must
        # equal a from-scratch lowering of the mirrored client state
        target = apply_update_views(model.views, mirror, model.store_schema)
        equivalent = session.backend.snapshot() == target.snapshot()
        assert equivalent, "incremental store diverged from whole-state lowering"

        whole_ms = statistics.median(whole_latencies) * 1000.0
        incremental_ms = statistics.median(incremental_latencies) * 1000.0
        writeplans = session.engine.writeplans.stats()
        return {
            "rows": rows,
            "ops_per_save": OPS_PER_SAVE,
            "whole_state_ms": round(whole_ms, 3),
            "incremental_ms": round(incremental_ms, 3),
            "speedup": round(whole_ms / incremental_ms, 2) if incremental_ms else None,
            "equivalent": equivalent,
            "writeplans": {
                "hits": writeplans.hits,
                "misses": writeplans.misses,
                "compiled": writeplans.compiled,
                "entries": writeplans.entries,
            },
            "ivm_fallbacks": session.engine.stats().ivm_fallbacks,
        }
    finally:
        session.backend.close()


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", BACKENDS)
def test_incremental_write_smoke(benchmark, backend_name):
    benchmark.pedantic(
        lambda: _measure(
            backend_name,
            SMOKE["sizes"][0],
            rounds_whole=SMOKE["rounds_whole"],
            rounds_incremental=SMOKE["rounds_incremental"],
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_incremental_matches_whole_state(backend_name):
    result = _measure(
        backend_name,
        SMOKE["sizes"][0],
        rounds_whole=SMOKE["rounds_whole"],
        rounds_incremental=SMOKE["rounds_incremental"],
    )
    assert result["equivalent"]
    assert result["ivm_fallbacks"] == 0
    assert result["writeplans"]["compiled"] >= 1
    # later rounds reuse the writeplan compiled in round one
    assert result["writeplans"]["hits"] >= result["writeplans"]["compiled"]


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    result = {
        "claim": "incremental SaveChanges through compiled update views "
        "costs O(|delta|): a small update batch saved via save_delta "
        "must beat the whole-state save (re-lower + full diff) by >= 5x "
        "at the 10^5-row tier, while producing a byte-identical store",
        "config": {
            "chain_types": CHAIN_TYPES,
            "ops_per_save": OPS_PER_SAVE,
            "rounds_whole": ROUNDS_WHOLE,
            "rounds_incremental": ROUNDS_INCREMENTAL,
            "sizes": list(SIZES),
        },
        "backends": {
            backend_name: {
                "sizes": {str(rows): _measure(backend_name, rows) for rows in SIZES}
            }
            for backend_name in BACKENDS
        },
    }
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_incremental_writes.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
