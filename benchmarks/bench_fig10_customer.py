"""Figure 10: SMO runtimes on the synthetic customer model.

Same operation mix as Figure 9, anchored at types of the generated
230-type-statistics model (scaled for the default run).  The
figure-shaped table comes from ``python -m repro.bench.fig10``.
"""

from __future__ import annotations


import pytest

from repro.bench.fig10 import suite_for
from repro.compiler import compile_mapping
from repro.errors import ValidationError
from repro.incremental import IncrementalCompiler
from repro.workloads.customer import customer_mapping

COMPILER = IncrementalCompiler()
SCALE = 0.15


def _apply(model, factory):
    try:
        COMPILER.apply(model, factory(model))
    except ValidationError:
        pass


def _suite():
    return dict(suite_for(SCALE, seed=7))


@pytest.mark.parametrize(
    "label",
    ["AE-TPT", "AE-TPC", "AE-TPH", "AA-FK", "AA-JT", "AP",
     "AEP-1p-TPT", "AEP-2p-TPT", "AEP-3p-TPT"],
)
def test_fig10_smo(benchmark, customer_model, label):
    factory = _suite()[label]
    benchmark(_apply, customer_model, factory)


def test_fig10_full_recompilation(benchmark, customer_model):
    benchmark.pedantic(
        lambda: compile_mapping(customer_mapping(scale=SCALE, seed=7)),
        rounds=1,
        iterations=1,
    )
