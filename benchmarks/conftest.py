"""Shared fixtures for the benchmark suite.

Benchmarks default to laptop-scale workload sizes; set ``REPRO_FULL=1``
to run the published sizes (Figure 4's N≤5/M≤15 grid, the 1002-type
chain, the 230-type customer model).  Results for EXPERIMENTS.md are
produced by the ``python -m repro.bench.figN`` drivers, which print the
paper-shaped tables; the pytest benchmarks here track representative
points so regressions show up in CI-style runs.
"""

from __future__ import annotations

import pytest

from repro.bench.fig10 import build_model as build_customer_model
from repro.bench.fig9 import build_model as build_chain_model
from repro.incremental import CompiledModel


@pytest.fixture(scope="session")
def chain_model() -> CompiledModel:
    """A pre-compiled 60-type chain model (small but structurally faithful)."""
    return build_chain_model(60)


@pytest.fixture(scope="session")
def customer_model() -> CompiledModel:
    """A pre-compiled customer model at scale 0.15."""
    return build_customer_model(0.15)
