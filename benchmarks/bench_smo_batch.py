"""Batched vs sequential SMO application: scheduler work and wall time.

The delta layer's acceptance claim: compiling N non-overlapping SMOs as
one :meth:`~repro.incremental.smo.IncrementalCompiler.compile_batch`
validates the *union* neighborhood of the composed delta once, so the
scheduler runs strictly fewer checks than N sequential
:meth:`~repro.session.OrmSession.evolve` calls (each of which validates
its own neighborhood).

Two workloads, both evolved by a batch of K fresh TPT subtypes of the
workload's root type:

* **hub_rim** — the Figure 4 stress model (TPT style so the base compile
  stays cheap while the schema is wide);
* **customer** — the Figure 10 realistic customer-like model.

``python benchmarks/bench_smo_batch.py`` writes ``BENCH_smo_batch.json``;
the pytest entries below keep a fast smoke point for CI.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.compiler import compile_mapping
from repro.edm import Attribute, INT
from repro.incremental import AddEntity, CompiledModel
from repro.session import OrmSession
from repro.workloads.customer import customer_mapping
from repro.workloads.hub_rim import hub_rim_mapping

SMOKE = ("hub_rim", {"n": 1, "m": 2}, 3)
SWEEP = [
    ("hub_rim", {"n": 2, "m": 2}, 5),
    ("customer", {"scale": 0.15, "seed": 7}, 5),
]


def _base_model(workload: str, params: dict) -> CompiledModel:
    if workload == "hub_rim":
        mapping = hub_rim_mapping(params["n"], params["m"], "TPT")
    else:
        mapping = customer_mapping(params["scale"], seed=params["seed"])
    return CompiledModel(mapping, compile_mapping(mapping).views)


def _subtype_smos(model: CompiledModel, count: int):
    """K non-overlapping SMOs: fresh TPT subtypes of the first root type."""
    root = model.client_schema.entity_sets[0].root_type
    return [
        AddEntity.tpt(
            model,
            f"BatchSub{index}",
            root,
            [Attribute(f"X{index}", INT)],
            f"BatchSub{index}T",
        )
        for index in range(count)
    ]


def _run_sequential(model: CompiledModel, count: int) -> dict:
    session = OrmSession.create(model)
    started = time.perf_counter()
    for index in range(count):
        session.evolve(_subtype_smos(session.model, index + 1)[index])
    elapsed = time.perf_counter() - started
    return {
        "evolutions": len(session.journal),
        "scheduled_checks": sum(e.scheduled_checks for e in session.journal),
        "elapsed_s": round(elapsed, 4),
        "fingerprint": session.model.fingerprint(),
    }


def _run_batched(model: CompiledModel, count: int) -> dict:
    session = OrmSession.create(model)
    started = time.perf_counter()
    session.evolve_many(_subtype_smos(session.model, count))
    elapsed = time.perf_counter() - started
    entry = session.journal[-1]
    return {
        "evolutions": len(session.journal),
        "scheduled_checks": entry.scheduled_checks,
        "elapsed_s": round(elapsed, 4),
        "fingerprint": session.model.fingerprint(),
    }


def _compare(workload: str, params: dict, count: int) -> dict:
    model = _base_model(workload, params)
    sequential = _run_sequential(model, count)
    batched = _run_batched(model, count)
    assert batched["fingerprint"] == sequential["fingerprint"]
    assert batched["scheduled_checks"] < sequential["scheduled_checks"], (
        f"{workload}: batch must schedule strictly fewer checks "
        f"({batched['scheduled_checks']} vs {sequential['scheduled_checks']})"
    )
    for row in (sequential, batched):
        row.pop("fingerprint")
    return {
        "workload": workload,
        "params": params,
        "smos": count,
        "sequential": sequential,
        "batched": batched,
        "check_reduction": round(
            1 - batched["scheduled_checks"] / sequential["scheduled_checks"], 3
        ),
        "speedup": round(
            sequential["elapsed_s"] / batched["elapsed_s"], 2
        ) if batched["elapsed_s"] else None,
    }


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["sequential", "batched"])
def test_smo_batch_smoke(benchmark, mode):
    workload, params, count = SMOKE
    model = _base_model(workload, params)
    run = _run_sequential if mode == "sequential" else _run_batched
    benchmark.pedantic(lambda: run(model, count), rounds=1, iterations=1)


def test_batch_schedules_fewer_checks():
    workload, params, count = SMOKE
    result = _compare(workload, params, count)
    assert result["check_reduction"] > 0


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    result = {
        "claim": "one batched neighborhood validation schedules strictly "
        "fewer checks than per-SMO validation",
        "points": [
            _compare(workload, params, count)
            for workload, params, count in SWEEP
        ],
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_smo_batch.json")
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
