"""Ablation: view reuse (Algorithms 1-2) vs regenerating views from scratch.

The incremental compiler's query/update-view adaptation *reuses* the
pre-compiled views (Section 1.2: "the incremental compiler can reuse or
modify these views ... much faster than a full mapping recompilation").
This ablation isolates that design choice: apply the same AddEntity, then
either (a) adapt views incrementally, or (b) throw the views away and
regenerate every view of the evolved mapping with the full compiler's
generator (validation scope kept identical — neighborhood only — so the
difference is purely view construction).
"""

from __future__ import annotations


from repro.bench import smo_suite
from repro.compiler import generate_views
from repro.incremental import IncrementalCompiler
from repro.workloads.chain import entity_name

COMPILER = IncrementalCompiler()


def test_with_view_reuse(benchmark, chain_model):
    factory = smo_suite.ae_tpt(entity_name(40))
    benchmark(lambda: COMPILER.apply(chain_model, factory(chain_model)))


def test_without_view_reuse(benchmark, chain_model):
    factory = smo_suite.ae_tpt(entity_name(41))

    def regenerate():
        result = COMPILER.apply(chain_model, factory(chain_model))
        # discard the adapted views; rebuild everything from the fragments
        evolved = result.model
        evolved.views = generate_views(evolved.mapping)

    benchmark(regenerate)


def test_reuse_is_faster(benchmark, chain_model):
    import time

    def run():
        factory = smo_suite.ae_tpt(entity_name(42))
        t0 = time.perf_counter()
        result = COMPILER.apply(chain_model, factory(chain_model))
        reuse = time.perf_counter() - t0

        t0 = time.perf_counter()
        generate_views(result.model.mapping)
        regen = time.perf_counter() - t0
        assert regen > reuse, (regen, reuse)
        return regen / reuse

    benchmark.pedantic(run, rounds=1, iterations=1)
