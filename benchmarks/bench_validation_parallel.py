"""Validation pipeline scaling: workers, shards, and the cache hierarchy.

Three axes over the hub-and-rim workload (fan-out M >= 3, so validation
decomposes into many independent per-FK containment checks):

* **workers** — the check scheduler at 1, 2, 4 and 8 workers.  Serial is
  the byte-identical historical path; multi-worker runs use the process
  executor with work-stealing shards.  On a single-core container the
  sweep documents the overhead floor rather than a speedup — the JSON
  records ``cpu_count`` so readers can interpret the numbers.
* **shard size** — the stealing granularity at a fixed worker count:
  1 check per shard (maximum stealing, maximum dispatch overhead) up to
  everything in one shard (no stealing at all).
* **cache** — cold vs warm-memory (one :class:`ValidationCache`, the
  intra-session re-validation scenario) vs warm-disk (a *fresh* cache
  over a shared :class:`PersistentCacheStore` — the fleet scenario), and
  finally **cross-process**: a real subprocess, sharing nothing with the
  parent but the cache directory, re-validating the same model.  The
  acceptance bar is the subprocess running >= 10x faster than the
  parent's cold compile.

``python benchmarks/bench_validation_parallel.py`` writes
``BENCH_validation.json`` with the full sweep.  ``REPRO_FULL=1`` adds
the scale tier — a 1002-type chain and a hub-and-rim at ~10x the
12-type Figure-4 point — which takes tens of minutes.  The pytest entry
points below track representative points (kept at (2, 2) so CI smoke
stays fast).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

import pytest

from repro.bench.harness import full_scale
from repro.compiler import generate_views, validate_mapping
from repro.containment import ValidationCache
from repro.containment.persist import PersistentCacheStore
from repro.workloads.chain import chain_mapping
from repro.workloads.hub_rim import hub_rim_mapping, type_count

# (N, M): N hub levels, M rims per hub.  M >= 3 gives each mapped table
# several foreign keys, i.e. real fan-out for the scheduler.
SMOKE_POINT = (2, 2)
SWEEP_POINT = (3, 3)
WORKER_COUNTS = (1, 2, 4, 8)
SHARD_SIZES = (1, 2, 4, None)  # None = auto (~4 shards per worker)
SHARD_SWEEP_WORKERS = 4

# the scale tier (REPRO_FULL=1): the paper's 1002-type incremental
# target as a chain, plus a hub-and-rim with ~10x the types of the
# 12-type Figure-4 (3, 3) point.
FULL_CHAIN_TYPES = 1002
FULL_HUB_RIM = (3, 39, "TPT")  # 3 levels x 39 rims = 120 types


def _fixture(n: int, m: int, style: str = "TPH"):
    mapping = hub_rim_mapping(n, m, style)
    return mapping, generate_views(mapping)


@pytest.fixture(scope="module")
def smoke():
    return _fixture(*SMOKE_POINT)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_validation_worker_sweep(benchmark, smoke, workers):
    mapping, views = smoke
    executor = "serial" if workers == 1 else "process"
    benchmark.pedantic(
        lambda: validate_mapping(mapping, views, workers=workers, executor=executor),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "warm"])
def test_validation_cache_ablation(benchmark, smoke, cached):
    mapping, views = smoke
    cache = ValidationCache()
    if cached:
        validate_mapping(mapping, views, cache=cache)  # warm it

    def run():
        report = validate_mapping(mapping, views, cache=cache)
        if cached:
            assert report.cache_hits > 0 and report.cache_misses == 0
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_validation_warm_disk(benchmark, smoke, tmp_path):
    """A fresh in-memory cache over a shared store: the fleet scenario."""
    mapping, views = smoke
    warmer = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
    validate_mapping(mapping, views, cache=warmer)
    warmer.close()
    fresh = ValidationCache(store=PersistentCacheStore(str(tmp_path)))

    def run():
        report = validate_mapping(mapping, views, cache=fresh)
        assert report.l2_hits > 0 or report.cache_hits > 0
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    fresh.close()


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _report_row(report, elapsed, **extra):
    row = {
        "elapsed_s": round(elapsed, 4),
        "coverage_checks": report.coverage_checks,
        "store_cells": report.store_cells,
        "containment_checks": report.containment_checks,
        "roundtrip_states": report.roundtrip_states,
    }
    row.update(extra)
    return row


# the subprocess side of the cross-process measurement: validate the
# named workload against $REPRO_CACHE_DIR, print (elapsed, l2 counters)
_CHILD = """
import json, os, sys, time
from repro.compiler import generate_views, validate_mapping
from repro.containment import ValidationCache
from repro.containment.persist import PersistentCacheStore
from repro.workloads.chain import chain_mapping
from repro.workloads.hub_rim import hub_rim_mapping

spec = json.loads(sys.argv[1])
if spec["model"] == "chain":
    mapping = chain_mapping(spec["types"])
else:
    mapping = hub_rim_mapping(spec["n"], spec["m"], spec["style"])
views = generate_views(mapping)
cache = ValidationCache(
    store=PersistentCacheStore(os.environ["REPRO_CACHE_DIR"])
)
t0 = time.perf_counter()
report = validate_mapping(mapping, views, cache=cache)
elapsed = time.perf_counter() - t0
cache.close()
print(json.dumps({
    "elapsed_s": elapsed,
    "l2_hits": report.l2_hits,
    "l2_misses": report.l2_misses,
}))
"""


def _spawn_child(workload_spec: dict, directory: str) -> dict:
    """Re-validate *workload_spec* in a real subprocess sharing only the
    cache *directory* with this process."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = directory
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(workload_spec)],
        env=env,
        capture_output=True,
        text=True,
    )
    if out.returncode != 0:
        return {"error": out.stderr[-500:]}
    return json.loads(out.stdout)


def _cross_process(
    workload_spec: dict, mapping, views
) -> tuple:
    """Cold-compile in this process (populating a shared store), then
    re-validate the same model in a real subprocess over the same
    directory.  The parent's cold time is the denominator — the exact
    price the second fleet member would otherwise have paid.

    Returns ``(row, cold_report, cold_s)`` so callers can reuse the
    cold run instead of validating the workload twice.
    """
    with tempfile.TemporaryDirectory() as directory:
        cache = ValidationCache(store=PersistentCacheStore(directory))
        cold, cold_s = _timed(
            lambda: validate_mapping(mapping, views, cache=cache)
        )
        cache.close()
        child = _spawn_child(workload_spec, directory)
    if "error" in child:
        return child, cold, cold_s
    row = {
        "parent_cold_s": round(cold_s, 4),
        "child_warm_s": round(child["elapsed_s"], 4),
        "child_l2_hits": child["l2_hits"],
        "child_l2_misses": child["l2_misses"],
        "speedup": (
            round(cold_s / child["elapsed_s"], 1) if child["elapsed_s"] else None
        ),
    }
    return row, cold, cold_s


def run_sweep(n: int, m: int) -> dict:
    mapping, views = _fixture(n, m)

    workers_axis = []
    for workers in WORKER_COUNTS:
        executor = "serial" if workers == 1 else "process"
        report, elapsed = _timed(
            lambda: validate_mapping(
                mapping, views, workers=workers, executor=executor
            )
        )
        workers_axis.append(
            _report_row(report, elapsed, workers=workers, executor=executor)
        )

    shards_axis = []
    for shard_size in SHARD_SIZES:
        report, elapsed = _timed(
            lambda: validate_mapping(
                mapping,
                views,
                workers=SHARD_SWEEP_WORKERS,
                executor="process",
                shard_size=shard_size,
            )
        )
        shards_axis.append(
            _report_row(
                report,
                elapsed,
                workers=SHARD_SWEEP_WORKERS,
                shard_size=shard_size if shard_size is not None else "auto",
            )
        )

    # cache hierarchy: cold -> warm-memory (same cache object) ->
    # warm-disk (fresh cache, shared store)
    with tempfile.TemporaryDirectory() as directory:
        cache = ValidationCache(store=PersistentCacheStore(directory))
        cold, cold_s = _timed(lambda: validate_mapping(mapping, views, cache=cache))
        warm_mem, warm_mem_s = _timed(
            lambda: validate_mapping(mapping, views, cache=cache)
        )
        cache.close()
        fresh = ValidationCache(store=PersistentCacheStore(directory))
        warm_disk, warm_disk_s = _timed(
            lambda: validate_mapping(mapping, views, cache=fresh)
        )
        fresh.close()
    cache_axis = {
        "cold": {
            "elapsed_s": round(cold_s, 4),
            "cache_hits": cold.cache_hits,
            "cache_misses": cold.cache_misses,
        },
        "warm_memory": {
            "elapsed_s": round(warm_mem_s, 4),
            "cache_hits": warm_mem.cache_hits,
            "cache_misses": warm_mem.cache_misses,
        },
        "warm_disk": {
            "elapsed_s": round(warm_disk_s, 4),
            "l2_hits": warm_disk.l2_hits,
            "l2_misses": warm_disk.l2_misses,
        },
        "speedup_warm_memory": round(cold_s / warm_mem_s, 1) if warm_mem_s else None,
        "speedup_warm_disk": round(cold_s / warm_disk_s, 1) if warm_disk_s else None,
    }

    workload_spec = {"model": "hub_rim", "n": n, "m": m, "style": "TPH"}
    cross_row, _, _ = _cross_process(workload_spec, mapping, views)
    serial_s = workers_axis[0]["elapsed_s"]
    return {
        "workload": dict(workload_spec, types=type_count(n, m)),
        "cpu_count": os.cpu_count(),
        "workers": workers_axis,
        "speedup_vs_serial": {
            str(row["workers"]): round(serial_s / row["elapsed_s"], 2)
            for row in workers_axis
        },
        "shards": shards_axis,
        "cache": cache_axis,
        "cross_process": cross_row,
        "per_check_timings_serial": {
            # recomputed serially with timings for the profile section
        },
    }


def run_scale_tier() -> dict:
    """REPRO_FULL: the 1002-type chain (the paper's incremental target
    size) and a hub-and-rim at ~10x the types of the Figure-4 (3, 3)
    point.  Each tier's single cold run both times the validation and
    populates the shared store its cross-process child warms from — the
    big models are never validated cold twice."""
    tiers = {}

    chain = chain_mapping(FULL_CHAIN_TYPES)
    chain_views = generate_views(chain)
    cross, report, elapsed = _cross_process(
        {"model": "chain", "types": FULL_CHAIN_TYPES}, chain, chain_views
    )
    tiers["chain"] = _report_row(
        report, elapsed, types=FULL_CHAIN_TYPES, executor="serial"
    )
    tiers["chain"]["cross_process"] = cross

    n, m, style = FULL_HUB_RIM
    mapping, views = _fixture(n, m, style)
    cross, report, elapsed = _cross_process(
        {"model": "hub_rim", "n": n, "m": m, "style": style}, mapping, views
    )
    tiers["hub_rim"] = _report_row(
        report,
        elapsed,
        n=n,
        m=m,
        style=style,
        types=type_count(n, m),
        executor="serial",
    )
    tiers["hub_rim"]["cross_process"] = cross
    return tiers


def main() -> None:
    n, m = SWEEP_POINT
    result = run_sweep(n, m)

    mapping, views = _fixture(n, m)
    report = validate_mapping(mapping, views)
    result["per_check_timings_serial"] = {
        name: round(seconds, 4) for name, seconds in report.check_timings.items()
    }

    if full_scale():
        result["scale"] = run_scale_tier()

    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_validation.json")
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
