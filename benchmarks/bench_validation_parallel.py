"""Validation pipeline scaling: worker sweep and cache ablation.

Two axes over the hub-and-rim workload (fan-out M >= 3, so validation
decomposes into many independent per-FK containment checks):

* **workers** — the check scheduler at 1, 2, 4 and 8 workers.  Serial is
  the byte-identical historical path; multi-worker runs use the process
  executor (the checks are pure CPU, so threads only help when the
  interpreter has true parallelism).  On a single-core container the
  sweep documents the overhead floor rather than a speedup — the JSON
  records ``cpu_count`` so readers can interpret the numbers.
* **cache** — cold vs warm validation through one
  :class:`~repro.containment.cache.ValidationCache`, the session
  re-validation scenario: the second run should be hits-only and far
  cheaper.

``python benchmarks/bench_validation_parallel.py`` writes
``BENCH_validation.json`` with the full sweep; the pytest entry points
below track representative points (kept at (2, 2) so CI smoke stays
fast).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.compiler import generate_views, validate_mapping
from repro.containment import ValidationCache
from repro.workloads.hub_rim import hub_rim_mapping

# (N, M): N hub levels, M rims per hub.  M >= 3 gives each mapped table
# several foreign keys, i.e. real fan-out for the scheduler.
SMOKE_POINT = (2, 2)
SWEEP_POINT = (3, 3)
WORKER_COUNTS = (1, 2, 4, 8)


def _fixture(n: int, m: int):
    mapping = hub_rim_mapping(n, m, "TPH")
    return mapping, generate_views(mapping)


@pytest.fixture(scope="module")
def smoke():
    return _fixture(*SMOKE_POINT)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_validation_worker_sweep(benchmark, smoke, workers):
    mapping, views = smoke
    executor = "serial" if workers == 1 else "process"
    benchmark.pedantic(
        lambda: validate_mapping(mapping, views, workers=workers, executor=executor),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "warm"])
def test_validation_cache_ablation(benchmark, smoke, cached):
    mapping, views = smoke
    cache = ValidationCache()
    if cached:
        validate_mapping(mapping, views, cache=cache)  # warm it

    def run():
        report = validate_mapping(mapping, views, cache=cache)
        if cached:
            assert report.cache_hits > 0 and report.cache_misses == 0
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def run_sweep(n: int, m: int) -> dict:
    mapping, views = _fixture(n, m)

    workers_axis = []
    for workers in WORKER_COUNTS:
        executor = "serial" if workers == 1 else "process"
        report, elapsed = _timed(
            lambda: validate_mapping(
                mapping, views, workers=workers, executor=executor
            )
        )
        workers_axis.append(
            {
                "workers": workers,
                "executor": executor,
                "elapsed_s": round(elapsed, 4),
                "coverage_checks": report.coverage_checks,
                "store_cells": report.store_cells,
                "containment_checks": report.containment_checks,
                "roundtrip_states": report.roundtrip_states,
            }
        )

    cache = ValidationCache()
    cold, cold_s = _timed(lambda: validate_mapping(mapping, views, cache=cache))
    warm, warm_s = _timed(lambda: validate_mapping(mapping, views, cache=cache))
    cache_axis = {
        "cold": {
            "elapsed_s": round(cold_s, 4),
            "cache_hits": cold.cache_hits,
            "cache_misses": cold.cache_misses,
        },
        "warm": {
            "elapsed_s": round(warm_s, 4),
            "cache_hits": warm.cache_hits,
            "cache_misses": warm.cache_misses,
        },
        "speedup": round(cold_s / warm_s, 1) if warm_s else None,
    }

    serial_s = workers_axis[0]["elapsed_s"]
    return {
        "workload": {"model": "hub_rim", "n": n, "m": m, "style": "TPH"},
        "cpu_count": os.cpu_count(),
        "workers": workers_axis,
        "speedup_vs_serial": {
            str(row["workers"]): round(serial_s / row["elapsed_s"], 2)
            for row in workers_axis
        },
        "cache": cache_axis,
        "per_check_timings_serial": {
            # recomputed serially with timings for the profile section
        },
    }


def main() -> None:
    n, m = SWEEP_POINT
    result = run_sweep(n, m)

    mapping, views = _fixture(n, m)
    report = validate_mapping(mapping, views)
    result["per_check_timings_serial"] = {
        name: round(seconds, 4) for name, seconds in report.check_timings.items()
    }

    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_validation.json")
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
