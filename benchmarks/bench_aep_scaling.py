"""AEP-np-TPT scaling: validation cost doubles with each extra split level.

Section 4.2: "AEP-np-TPT tends to scale exponentially with n (linearly
with the number of tables) since the compiler has to validate 2ⁿ new
foreign key constraints, one for each new table."
"""

from __future__ import annotations


import pytest

from repro.bench import smo_suite
from repro.incremental import IncrementalCompiler
from repro.workloads.chain import entity_name

COMPILER = IncrementalCompiler()


@pytest.mark.parametrize("n_splits", [1, 2, 3, 4])
def test_aep_split_levels(benchmark, chain_model, n_splits):
    factory = smo_suite.aep_tpt(entity_name(25), n_splits)
    benchmark(lambda: COMPILER.apply(chain_model, factory(chain_model)))


def test_aep_validation_check_count_doubles(benchmark, chain_model):
    """2ⁿ tables ⇒ 2ⁿ foreign-key validations — checked structurally, not
    just by wall clock."""

    def run():
        counts = []
        for n_splits in (1, 2, 3):
            smo = smo_suite.aep_tpt(entity_name(26), n_splits)(chain_model)
            COMPILER.apply(chain_model, smo)
            counts.append(smo.validation_checks)
        assert counts == [2, 4, 8], counts
        return counts

    benchmark.pedantic(run, rounds=1, iterations=1)
