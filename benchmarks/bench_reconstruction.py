"""Benchmark: mapping reconstruction and the Section 6 order question.

`reconstruct` + incremental `replay` vs a single full compilation of the
same mapping — incremental replay does the same job (produce compiled
views for the whole mapping) while validating one neighborhood at a time.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_mapping
from repro.modef import reconstruct, replay
from repro.workloads import chain_mapping, hub_rim_mapping


@pytest.mark.parametrize("n_types", [10, 20])
def test_reconstruct_and_replay_chain(benchmark, n_types):
    mapping = chain_mapping(n_types)

    def run():
        base, smos = reconstruct(mapping)
        return replay(base, smos)

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.parametrize("n_types", [10, 20])
def test_full_compile_chain_baseline(benchmark, n_types):
    benchmark.pedantic(
        lambda: compile_mapping(chain_mapping(n_types)), rounds=2, iterations=1
    )


def test_replay_hub_rim_tph(benchmark):
    mapping = hub_rim_mapping(2, 2, "TPH")

    def run():
        base, smos = reconstruct(mapping)
        return replay(base, smos)

    benchmark.pedantic(run, rounds=2, iterations=1)
