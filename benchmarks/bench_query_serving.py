"""Hot-path query serving: cold vs warm plan-cache throughput.

The plan cache (:mod:`repro.query.plancache`) splits every entity query
into a constant-free *shape* plus a bound-parameter vector, and caches
the unfolded branch set (and, on SQLite, the generated parameterized SQL
+ prepared statement) per shape.  This benchmark measures what that buys
on the serving path, and that invalidation really is delta-scoped:

* **cold vs warm**: a workload of a few query shapes, each issued with
  many distinct constant bindings, against the Figure 1 model, measured
  three ways.  *Uncached* is the pre-cache serving path (direct
  :func:`unfold` + ``run_on``, statements re-prepared every time).
  *Cold* is this cache's miss path: every cache is cleared before every
  request, so each pays shape extraction, keying, unfolding, SQL
  generation and statement preparation.  *Warm* is the steady-state hit
  path: parameter binding + execution only.  All three must produce
  identical answers; the report records QPS for each and the
  warm-over-cold speedup at a translation-bound store size (where the
  fast path is the story) and an execution-bound size (where engine
  work dominates and the speedup honestly decays).

* **interleaved query/evolve**: two entity sets mapped to disjoint
  tables.  After warming plans for both, an ``AddProperty`` SMO evolves
  one of them.  The hit/miss counters must show the untouched set's plan
  *still hitting* after the evolution (delta-scoped invalidation) while
  the touched set's plan is rebuilt exactly once.

``python benchmarks/bench_query_serving.py`` writes
``BENCH_query_serving.json``; the pytest entries keep fast CI smoke
points (answer equivalence + invalidation scoping, no timing asserts).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.algebra.conditions import TRUE, Comparison, IsOf, and_
from repro.backend import create_backend
from repro.compiler import compile_mapping, optimize_views
from repro.edm import INT, STRING, Attribute, ClientSchemaBuilder, Entity
from repro.edm.instances import ClientState
from repro.incremental import AddProperty, CompiledModel
from repro.mapping import Mapping, MappingFragment
from repro.mapping.roundtrip import apply_update_views
from repro.query import EntityQuery
from repro.query.unfold import unfold
from repro.relational import Column, StoreSchema, Table
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage4

SMOKE_SIZE = 60
#: stores to serve against: small enough that translation dominates, and
#: large enough (~10^5 store rows) that execution does — the speedup
#: story differs.  Each point fixes its own binding count: at the
#: execution-bound size a handful of bindings already takes seconds per
#: pipeline variant.
SERVING_POINTS = {
    "translation_bound": {"persons": 16, "bindings": 40},
    "execution_bound": {"persons": 75_000, "bindings": 5},
}
if os.environ.get("REPRO_FULL"):
    SERVING_POINTS["translation_bound"]["bindings"] = 200
    SERVING_POINTS["execution_bound"] = {"persons": 750_000, "bindings": 5}

BACKENDS = ("memory", "sqlite")


# ---------------------------------------------------------------------------
# Phase 1: cold vs warm serving over the Figure 1 model
# ---------------------------------------------------------------------------

def _figure1_model() -> CompiledModel:
    """The Figure 1 model with Section-6-optimized query views.

    Serving measurements use the production view shape: the optimizer's
    FOJ -> LOJ/UNION ALL rewrite is what lets SQLite drive the joins
    through primary-key indexes (the raw FULL OUTER JOIN form forces an
    O(rows^2) nested-loop scan at execution-bound sizes)."""
    mapping = mapping_stage4()
    views = compile_mapping(mapping).views
    return CompiledModel(mapping, optimize_views(mapping, views))


def _figure1_state(model: CompiledModel, size: int) -> ClientState:
    state = ClientState(model.client_schema)
    employees = []
    for i in range(size):
        kind = i % 3
        if kind == 0:
            entity = Entity.of("Person", Id=i, Name=f"p{i}")
        elif kind == 1:
            entity = Entity.of(
                "Employee", Id=i, Name=f"e{i}", Department=f"d{i % 7}"
            )
            employees.append(i)
        else:
            entity = Entity.of(
                "Customer",
                Id=i,
                Name=f"c{i}",
                CredScore=300 + (i * 37) % 550,
                BillAddr=f"addr {i}",
            )
        state.add_entity("Persons", entity)
        if kind == 2 and employees:
            state.add_association(
                "Supports", (i,), (employees[i % len(employees)],)
            )
    return state


def _figure1_store(model: CompiledModel, size: int):
    """The store state for *size* persons, built once and shared across
    backends (building a 10^5-row store dwarfs serving it)."""
    client = _figure1_state(model, size)
    return apply_update_views(model.views, client, model.store_schema)


def _figure1_session(
    model: CompiledModel, backend_name: str, size: int, store=None
) -> OrmSession:
    if store is None:
        store = _figure1_store(model, size)
    backend = create_backend(backend_name, model.store_schema, store_state=store)
    return OrmSession(model, backend=backend)


#: three shapes, each a factory from one binding value — the workload
#: reissues every shape with BINDINGS distinct constants.
SHAPES = {
    "by_id": lambda v: EntityQuery(
        "Persons", Comparison("Id", "=", v), ("Id", "Name")
    ),
    "by_name": lambda v: EntityQuery(
        "Persons", Comparison("Name", "=", f"c{v}"), ("Id", "Name")
    ),
    "customer_screen": lambda v: EntityQuery(
        "Persons",
        and_(
            IsOf("Customer"),
            Comparison("CredScore", ">=", 300 + v),
            Comparison("Id", ">", v),
            Comparison("BillAddr", "!=", f"addr {v}"),
        ),
        ("Id", "Name", "CredScore"),
    ),
}


def _drop_statements(session: OrmSession) -> None:
    statements = getattr(session.backend, "_statements", None)
    if statements is not None:
        statements.clear()


def _drop_backend_caches(session: OrmSession) -> None:
    """Clear every backend-side serving cache: prepared statements
    (SQLite) and row-view/index caches (memory)."""
    _drop_statements(session)
    clear = getattr(session.backend, "clear_caches", None)
    if clear is not None:
        clear()


def _reset_statement_stats(session: OrmSession) -> None:
    statements = getattr(session.backend, "_statements", None)
    if statements is not None:
        statements.reset_stats()


def _serve(session: OrmSession, bindings: int, mode: str):
    """(elapsed seconds, query count, answer digest) for one run.

    ``mode`` is ``uncached`` (the pre-cache pipeline: direct unfold +
    run_on, statements re-prepared), ``cold`` (every serving cache —
    plans, statements, row views, indexes — cleared before each request:
    the miss path), or ``warm`` (the hit path)."""
    model = session.model
    digest = []
    started = time.perf_counter()
    for value in range(bindings):
        for factory in SHAPES.values():
            query = factory(value)
            if mode == "uncached":
                _drop_statements(session)
                rows = unfold(
                    query, model.views, model.client_schema
                ).run_on(session.backend)
            else:
                if mode == "cold":
                    session.plan_cache.clear()
                    _drop_backend_caches(session)
                rows = session.query(query)
            digest.append(sorted(repr(e) for e in rows))
    elapsed = time.perf_counter() - started
    return elapsed, bindings * len(SHAPES), digest


def _measure_serving(
    model: CompiledModel, backend_name: str, size: int, bindings: int, store=None
) -> dict:
    session = _figure1_session(model, backend_name, size, store=store)
    try:
        store_rows = session.backend.row_count()
        base_s, count, base_digest = _serve(session, bindings, "uncached")
        cold_s, _, cold_digest = _serve(session, bindings, "cold")
        session.plan_cache.clear()
        _drop_backend_caches(session)
        # warm-up pass builds plans and indexes; counters reset so the
        # timed pass reports pure steady state, not warm-up pollution
        _serve(session, bindings, "warm")
        _reset_statement_stats(session)
        warm_s, _, warm_digest = _serve(session, bindings, "warm")
        assert base_digest == cold_digest == warm_digest, (
            "cached plans changed the answers"
        )
        stats = session.plan_cache.stats()
        result = {
            "store_rows": store_rows,
            "queries": count,
            "uncached_s": round(base_s, 4),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "uncached_qps": round(count / base_s, 1) if base_s else None,
            "cold_qps": round(count / cold_s, 1) if cold_s else None,
            "warm_qps": round(count / warm_s, 1) if warm_s else None,
            "warm_over_cold": round(cold_s / warm_s, 2) if warm_s else None,
            "warm_over_uncached": round(base_s / warm_s, 2) if warm_s else None,
            "plan_cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": stats.entries,
            },
        }
        statements = getattr(session.backend, "statement_cache_stats", None)
        if statements is not None:
            st = statements()  # steady-state warm pass only (reset above)
            result["statement_cache"] = {
                "hits": st.hits,
                "misses": st.misses,
                "entries": st.entries,
                "select": {"hits": st.select_hits, "misses": st.select_misses},
                "dml": {"hits": st.dml_hits, "misses": st.dml_misses},
            }
        index_stats = getattr(session.backend, "index_stats", None)
        if index_stats is not None:
            ix = index_stats()
            result["physical_indexes"] = {
                "builds": ix.builds,
                "hits": ix.hits,
                "invalidations": ix.invalidations,
                "entries": ix.entries,
                "compiled_runs": ix.compiled_runs,
            }
        return result
    finally:
        session.backend.close()


# ---------------------------------------------------------------------------
# Phase 2: interleaved query/evolve over two disjoint entity sets
# ---------------------------------------------------------------------------

def _disjoint_mapping() -> Mapping:
    """Two singleton entity sets mapped to disjoint tables — evolving one
    must leave the other's cached plans untouched."""
    schema = (
        ClientSchemaBuilder()
        .entity("Left", key=[("Id", INT)], attrs=[("Val", STRING)])
        .entity_set("Lefts", "Left")
        .entity("Right", key=[("Id", INT)], attrs=[("Val", STRING)])
        .entity_set("Rights", "Right")
        .build()
    )
    tables = [
        Table(
            "TL",
            (Column("Id", INT, False), Column("Val", STRING, True)),
            ("Id",),
        ),
        Table(
            "TR",
            (Column("Id", INT, False), Column("Val", STRING, True)),
            ("Id",),
        ),
    ]
    fragments = [
        MappingFragment(
            client_source="Lefts",
            is_association=False,
            client_condition=TRUE,
            store_table="TL",
            store_condition=TRUE,
            attribute_map=(("Id", "Id"), ("Val", "Val")),
        ),
        MappingFragment(
            client_source="Rights",
            is_association=False,
            client_condition=TRUE,
            store_table="TR",
            store_condition=TRUE,
            attribute_map=(("Id", "Id"), ("Val", "Val")),
        ),
    ]
    return Mapping(schema, StoreSchema(tables), fragments)


def _measure_interleaved(backend_name: str, size: int = 50) -> dict:
    mapping = _disjoint_mapping()
    model = CompiledModel(mapping, compile_mapping(mapping).views)
    session = OrmSession.create(model, backend=backend_name)
    try:
        with session.edit() as state:
            for i in range(size):
                state.add_entity("Lefts", Entity.of("Left", Id=i, Val=f"l{i}"))
                state.add_entity("Rights", Entity.of("Right", Id=i, Val=f"r{i}"))

        left = lambda v: EntityQuery("Lefts", Comparison("Id", ">", v))  # noqa: E731
        right = lambda v: EntityQuery("Rights", Comparison("Id", ">", v))  # noqa: E731
        # warm one plan per set, then serve a few bindings from cache
        for v in range(4):
            session.query(left(v))
            session.query(right(v))
        before = session.plan_cache.stats()

        session.evolve(
            AddProperty(
                "Left", Attribute("Extra", STRING, nullable=True), "TL", "Extra"
            )
        )
        after_smo = session.plan_cache.stats()

        right_rows = session.query(right(0))
        after_right = session.plan_cache.stats()
        left_rows = session.query(left(0))
        after_left = session.plan_cache.stats()

        untouched_hit = (
            after_right.hits == after_smo.hits + 1
            and after_right.misses == after_smo.misses
        )
        touched_rebuilt = after_left.misses == after_right.misses + 1
        assert len(right_rows) == size - 1 and len(left_rows) == size - 1
        return {
            "backend": backend_name,
            "warm_hits_before_smo": before.hits,
            "invalidations": after_smo.invalidations,
            "entries_after_smo": after_smo.entries,
            "untouched_set_hit_after_smo": untouched_hit,
            "touched_set_rebuilt_after_smo": touched_rebuilt,
        }
    finally:
        session.backend.close()


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", BACKENDS)
def test_serving_bench_smoke(benchmark, backend_name):
    model = _figure1_model()
    benchmark.pedantic(
        lambda: _measure_serving(model, backend_name, SMOKE_SIZE, bindings=5),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_cached_plans_answer_identically(backend_name):
    """Warm answers byte-identical to cold on a small workload, with the
    plan cache actually hitting."""
    model = _figure1_model()
    result = _measure_serving(model, backend_name, SMOKE_SIZE, bindings=5)
    assert result["plan_cache"]["hits"] > 0
    assert result["plan_cache"]["entries"] == len(SHAPES)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_untouched_set_survives_evolution(backend_name):
    result = _measure_interleaved(backend_name)
    assert result["untouched_set_hit_after_smo"]
    assert result["touched_set_rebuilt_after_smo"]
    assert result["invalidations"] >= 1


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    model = _figure1_model()
    serving = {}
    for label, config in SERVING_POINTS.items():
        size, bindings = config["persons"], config["bindings"]
        store = _figure1_store(model, size)
        point = {
            "persons": size,
            "bindings_per_shape": bindings,
            "store_rows": store.row_count(),
        }
        for backend_name in BACKENDS:
            point[backend_name] = _measure_serving(
                model, backend_name, size, bindings, store=store
            )
        serving[label] = point
    result = {
        "claim": "parameterized plan cache + compiled physical plans "
        "(memory) / prepared statements (sqlite): warm (hit-path) "
        "repeated-shape serving vs cold (miss-path) and vs the uncached "
        "pipeline, identical answers; delta-scoped invalidation keeps "
        "untouched sets hot",
        "serving": {
            "shapes": len(SHAPES),
            **serving,
        },
        "interleaved": [
            _measure_interleaved(backend_name) for backend_name in BACKENDS
        ],
    }
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_query_serving.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
