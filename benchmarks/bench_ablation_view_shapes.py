"""Ablation: raw FOJ query views vs optimized LOJ/UNION ALL views.

Section 6 suggests studying "the differences between these views for
different types of mappings ... and their effect on query and update
performance".  Here: view-generation cost with and without optimization,
and the *evaluation* cost of reading a store state back through each
shape (the stand-in for query performance on our in-memory engine).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.compiler import generate_views, optimize_views
from repro.edm import ClientState, Entity
from repro.mapping import apply_query_views, apply_update_views
from repro.workloads.paper_example import mapping_stage4


@pytest.fixture(scope="module")
def figure1_setup():
    mapping = mapping_stage4()
    views_raw = generate_views(mapping)
    views_opt = optimize_views(mapping, views_raw)
    state = ClientState(mapping.client_schema)
    for ident in range(1, 40):
        kind = ("Person", "Employee", "Customer")[ident % 3]
        if kind == "Person":
            state.add_entity("Persons", Entity.of("Person", Id=ident, Name="n"))
        elif kind == "Employee":
            state.add_entity(
                "Persons", Entity.of("Employee", Id=ident, Name="n", Department="d")
            )
        else:
            state.add_entity(
                "Persons",
                Entity.of("Customer", Id=ident, Name="n", CredScore=1, BillAddr="a"),
            )
    store = apply_update_views(views_raw, state, mapping.store_schema)
    return mapping, views_raw, views_opt, store


def test_generate_raw_views(benchmark):
    mapping = mapping_stage4()
    benchmark(lambda: generate_views(mapping))


def test_generate_optimized_views(benchmark):
    mapping = mapping_stage4()
    benchmark(lambda: optimize_views(mapping, generate_views(mapping)))


def test_read_through_raw_views(benchmark, figure1_setup):
    mapping, views_raw, _, store = figure1_setup
    benchmark(lambda: apply_query_views(views_raw, store, mapping.client_schema))


def test_read_through_optimized_views(benchmark, figure1_setup):
    mapping, _, views_opt, store = figure1_setup
    benchmark(lambda: apply_query_views(views_opt, store, mapping.client_schema))


def test_optimized_views_not_larger(benchmark, figure1_setup):
    mapping, views_raw, views_opt, _ = figure1_setup

    def sizes():
        raw = sum(
            1 for v in views_raw.query_views.values() for _ in v.query.walk()
        )
        opt = sum(
            1 for v in views_opt.query_views.values() for _ in v.query.walk()
        )
        assert opt <= raw
        return raw, opt

    benchmark.pedantic(sizes, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

ROUNDS = 25


def _median_ms(fn, rounds: int = ROUNDS) -> float:
    latencies = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - started)
    return round(statistics.median(latencies) * 1000.0, 3)


def _view_nodes(views) -> int:
    return sum(1 for v in views.query_views.values() for _ in v.query.walk())


def main() -> None:
    mapping = mapping_stage4()
    views_raw = generate_views(mapping)
    views_opt = optimize_views(mapping, views_raw)
    state = ClientState(mapping.client_schema)
    for ident in range(1, 40):
        kind = ("Person", "Employee", "Customer")[ident % 3]
        if kind == "Person":
            state.add_entity("Persons", Entity.of("Person", Id=ident, Name="n"))
        elif kind == "Employee":
            state.add_entity(
                "Persons", Entity.of("Employee", Id=ident, Name="n", Department="d")
            )
        else:
            state.add_entity(
                "Persons",
                Entity.of("Customer", Id=ident, Name="n", CredScore=1, BillAddr="a"),
            )
    store = apply_update_views(views_raw, state, mapping.store_schema)

    generate_raw_ms = _median_ms(lambda: generate_views(mapping))
    generate_opt_ms = _median_ms(
        lambda: optimize_views(mapping, generate_views(mapping))
    )
    read_raw_ms = _median_ms(
        lambda: apply_query_views(views_raw, store, mapping.client_schema)
    )
    read_opt_ms = _median_ms(
        lambda: apply_query_views(views_opt, store, mapping.client_schema)
    )
    raw_nodes = _view_nodes(views_raw)
    opt_nodes = _view_nodes(views_opt)
    result = {
        "claim": "view optimization pays for itself: optimized query "
        "views are no larger than the raw FOJ shapes and no slower to "
        "read a store state back through",
        "config": {"mapping": "paper stage4", "rounds": ROUNDS, "entities": 39},
        "generation": {
            "raw_ms": generate_raw_ms,
            "optimized_ms": generate_opt_ms,
        },
        "read_through": {
            "raw_ms": read_raw_ms,
            "optimized_ms": read_opt_ms,
            "speedup": round(read_raw_ms / read_opt_ms, 2) if read_opt_ms else None,
        },
        "view_nodes": {
            "raw": raw_nodes,
            "optimized": opt_nodes,
            "not_larger": opt_nodes <= raw_nodes,
        },
    }
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_ablation_view_shapes.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
