"""Materialized result tier: warm reads that survive writes.

The result cache (:mod:`repro.query.resultcache`) exists so that a hot
query set keeps paying O(1) per read *between* writes and O(|delta|)
per write, instead of re-executing the reconstruction view every time.
This benchmark drives the interleaved workload the tier is built for: a
fixed set of hot entity queries served over and over while
``save_delta`` rounds mutate the store underneath.  One session runs
with the tier on, a twin session runs with ``result_cache_budget=0``
(every read re-executes), and the benchmark *verifies as it measures*:
after every write round the two sessions' answers are compared
row-for-row, so a stale read is a hard failure, not a footnote.

``python benchmarks/bench_result_cache.py`` writes
``BENCH_result_cache.json`` for both backends;
``scripts/check_serving_regression.py`` gates on a >= 3x maintained-read
speedup at the 10^5-row tier and zero stale reads in CI.  The pytest
entries run a 10^4-row smoke version (equivalence assertions, no timing
asserts).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from repro.algebra.conditions import Comparison
from repro.backend import create_backend
from repro.compiler import compile_mapping
from repro.edm import Entity
from repro.incremental import CompiledModel
from repro.ivm import DeltaScript, EntityOp
from repro.query.language import EntityQuery
from repro.session import OrmSession
from repro.workloads.chain import chain_mapping, entity_name, set_name

BACKENDS = ("memory", "sqlite")
CHAIN_TYPES = 4

SIZES = (10_000, 100_000)
if os.environ.get("REPRO_FULL"):
    SIZES = (10_000, 100_000, 1_000_000)

ROUNDS = 5
OPS_PER_SAVE = 16
QUERIES_PER_ROUND = 40
#: cells of result-cache budget per store row — sized so the whole hot
#: query set stays resident at every tier (the benchmark measures
#: maintenance, not eviction churn; eviction has its own tests)
BUDGET_CELLS_PER_ROW = 40
SMOKE = {"size": 10_000, "rounds": 2, "queries_per_round": 8}


def _model() -> CompiledModel:
    mapping = chain_mapping(CHAIN_TYPES)
    return CompiledModel(mapping, compile_mapping(mapping, validate=False).views)


def _entity(index: int, row: int, tag: str) -> Entity:
    return Entity.of(
        entity_name(index),
        Id=row,
        EntityAtt2=f"a{tag}",
        EntityAtt3=f"b{row}",
        EntityAtt4=f"c{row % 97}",
    )


def _session(model: CompiledModel, backend_name: str, rows: int, budget: int) -> OrmSession:
    backend = create_backend(backend_name, model.store_schema)
    session = OrmSession(model, backend=backend, result_cache_budget=budget)
    per_set = rows // CHAIN_TYPES
    with session.edit() as state:
        for index in range(1, CHAIN_TYPES + 1):
            for row in range(per_set):
                state.add_entity(set_name(index), _entity(index, row, str(row % 5)))
    return session


def _hot_queries():
    """The fixed hot set: one whole-set scan and one selective filter
    per entity set — the shapes the chain workload keeps warm."""
    queries = []
    for index in range(1, CHAIN_TYPES + 1):
        queries.append(EntityQuery(set_name(index)))
        queries.append(
            EntityQuery(set_name(index), Comparison("EntityAtt4", "=", "c7"))
        )
    return queries


def _update_batch(per_set: int, round_no: int, ops: int):
    batch = []
    for op in range(ops):
        index = (op % CHAIN_TYPES) + 1
        row = (round_no * 7919 + op * 104729) % per_set
        batch.append((index, _entity(index, row, f"r{round_no}.{op}")))
    return batch


def _canon(rows):
    return sorted(repr(r) for r in rows)


def _measure(
    backend_name: str,
    rows: int,
    rounds: int = ROUNDS,
    queries_per_round: int = QUERIES_PER_ROUND,
) -> dict:
    model = _model()
    budget = BUDGET_CELLS_PER_ROW * rows
    cached = _session(model, backend_name, rows, budget)
    baseline = _session(model, backend_name, rows, 0)
    per_set = rows // CHAIN_TYPES
    queries = _hot_queries()
    try:
        # warm the tier: first touch of every hot shape populates an entry
        for query in queries:
            cached.query(query)
            baseline.query(query)

        maintain_ms, baseline_save_ms = [], []
        cached_read_s = baseline_read_s = 0.0
        reads = 0
        stale_reads = 0
        for round_no in range(rounds):
            script = DeltaScript(
                tuple(
                    EntityOp("update", set_name(index), entity=entity)
                    for index, entity in _update_batch(
                        per_set, round_no, OPS_PER_SAVE
                    )
                )
            )

            started = time.perf_counter()
            cached.save_delta(script)
            maintain_ms.append((time.perf_counter() - started) * 1000.0)

            started = time.perf_counter()
            baseline.save_delta(script)
            baseline_save_ms.append((time.perf_counter() - started) * 1000.0)

            started = time.perf_counter()
            for read in range(queries_per_round):
                cached.query(queries[read % len(queries)])
            cached_read_s += time.perf_counter() - started

            started = time.perf_counter()
            for read in range(queries_per_round):
                baseline.query(queries[read % len(queries)])
            baseline_read_s += time.perf_counter() - started
            reads += queries_per_round

            # verify as we measure: every hot answer must match the
            # re-executing twin exactly after every write round
            for query in queries:
                if _canon(cached.query(query)) != _canon(baseline.query(query)):
                    stale_reads += 1

        stats = cached.serving_stats().results
        maintained_qps = reads / cached_read_s if cached_read_s else None
        reexec_qps = reads / baseline_read_s if baseline_read_s else None
        return {
            "rows": rows,
            "ops_per_save": OPS_PER_SAVE,
            "queries_per_round": queries_per_round,
            "rounds": rounds,
            "maintained_read_qps": round(maintained_qps, 1) if maintained_qps else None,
            "reexec_read_qps": round(reexec_qps, 1) if reexec_qps else None,
            "read_speedup": (
                round(maintained_qps / reexec_qps, 2)
                if maintained_qps and reexec_qps
                else None
            ),
            "maintain_ms_per_delta": round(statistics.median(maintain_ms), 3),
            "baseline_save_ms_per_delta": round(
                statistics.median(baseline_save_ms), 3
            ),
            "maintenance_overhead_ms": round(
                statistics.median(maintain_ms)
                - statistics.median(baseline_save_ms),
                3,
            ),
            "stale_reads": stale_reads,
            "result_cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "maintained": stats.maintained,
                "invalidated": stats.invalidated,
                "fallbacks": stats.fallbacks,
                "evictions": stats.evictions,
                "validation_failures": stats.validation_failures,
                "entries": stats.entries,
                "cost": stats.cost,
                "budget": stats.budget,
            },
        }
    finally:
        cached.backend.close()
        baseline.backend.close()


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", BACKENDS)
def test_result_cache_smoke(benchmark, backend_name):
    benchmark.pedantic(
        lambda: _measure(
            backend_name,
            SMOKE["size"],
            rounds=SMOKE["rounds"],
            queries_per_round=SMOKE["queries_per_round"],
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_maintained_reads_are_exact(backend_name):
    result = _measure(
        backend_name,
        SMOKE["size"],
        rounds=SMOKE["rounds"],
        queries_per_round=SMOKE["queries_per_round"],
    )
    assert result["stale_reads"] == 0
    stats = result["result_cache"]
    assert stats["validation_failures"] == 0
    # chain shapes are all maintainable: deltas patch entries in place
    assert stats["maintained"] > 0
    assert stats["fallbacks"] == 0
    # warm reads actually come out of the tier
    assert stats["hits"] > 0


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    result = {
        "claim": "the materialized result tier serves a hot query set "
        "from maintained entries at >= 3x the re-execution read rate at "
        "the 10^5-row tier while save_delta rounds mutate the store, "
        "with zero stale reads and O(|delta|) maintenance per write",
        "config": {
            "chain_types": CHAIN_TYPES,
            "ops_per_save": OPS_PER_SAVE,
            "queries_per_round": QUERIES_PER_ROUND,
            "rounds": ROUNDS,
            "budget_cells_per_row": BUDGET_CELLS_PER_ROW,
            "sizes": list(SIZES),
        },
        "backends": {
            backend_name: {
                "sizes": {str(rows): _measure(backend_name, rows) for rows in SIZES}
            }
            for backend_name in BACKENDS
        },
    }
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_result_cache.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
