"""Concurrent serving under schema-evolution churn.

The epoch engine (:mod:`repro.engine`) promises that ``query`` stays
safe — and on snapshot backends lock-free — while ``evolve_many`` /
``undo`` publish new epochs under live traffic.  This benchmark measures
what that costs and *proves the consistency claim as it measures*:

* **single_warm** — one thread, warm plan cache, no writer: the
  per-query baseline (p50/p99 latency, QPS).
* **query_only** — CLIENTS reader threads, no writer: what concurrency
  alone does to latency (on CPython this is GIL-bound, so per-request
  p99 inflates roughly with the thread count even though QPS holds).
* **churn** — the same CLIENTS readers while the writer applies
  BATCHES ``evolve_many`` + ``undo`` pairs (an ``AddProperty`` on one
  chain table and its rollback).  Every response is checked against the
  answer precomputed for the epoch fingerprint it claims consistency
  with — a mismatch is a **torn read** and counts in ``torn_reads``,
  which must be 0.  The plan-cache counters prove untouched-set plans
  survive every swap (delta-scoped successor carry-over).

``python benchmarks/bench_serving_concurrent.py`` writes
``BENCH_serving_concurrent.json`` for both backends;
``scripts/check_serving_regression.py`` gates on it in CI.  The pytest
entries run a scaled-down smoke version (consistency assertions, no
timing asserts).
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.backend import create_backend
from repro.compiler import compile_mapping
from repro.edm import STRING, Attribute, Entity
from repro.incremental import AddProperty, CompiledModel
from repro.query import EntityQuery
from repro.session import OrmSession
from repro.workloads.chain import chain_mapping, entity_name, set_name

BACKENDS = ("memory", "sqlite")
CHAIN_TYPES = 6
ROWS_PER_SET = 40

CLIENTS = 8
BATCHES = 20
QUERY_ONLY_SECONDS = 1.5
SMOKE = {"clients": 4, "batches": 4, "query_only_seconds": 0.3}
if os.environ.get("REPRO_FULL"):
    CLIENTS, BATCHES, QUERY_ONLY_SECONDS = 16, 60, 4.0


def _chain_model() -> CompiledModel:
    mapping = chain_mapping(CHAIN_TYPES)
    return CompiledModel(
        mapping, compile_mapping(mapping, validate=False).views
    )


def _session(model: CompiledModel, backend_name: str, clients: int) -> OrmSession:
    backend = create_backend(
        backend_name, model.store_schema, pool_size=clients
    )
    session = OrmSession(model, backend=backend)
    with session.edit() as state:
        for index in range(1, CHAIN_TYPES + 1):
            for row in range(ROWS_PER_SET):
                state.add_entity(
                    set_name(index),
                    Entity.of(
                        entity_name(index),
                        Id=row,
                        EntityAtt2=f"a{row % 5}",
                        EntityAtt3=f"b{row}",
                        EntityAtt4=f"c{row}",
                    ),
                )
    return session


def _churn_smo() -> AddProperty:
    """The repeated migration: widen Entity1's table by a nullable column
    (touched neighborhood = Entities1; every other set is untouched)."""
    return AddProperty(
        entity_name(1), Attribute("Tmp", STRING, nullable=True), "T1", "Tmp"
    )


#: the reader workload: one query on the churned set, one on an
#: untouched set — both parameterized so the plan cache serves hits.
def _touched_query(value: int) -> EntityQuery:
    return EntityQuery(
        set_name(1), projection=("Id", "EntityAtt2")
    ) if value % 2 else EntityQuery(set_name(1))


def _untouched_query(value: int) -> EntityQuery:
    return EntityQuery(
        set_name(CHAIN_TYPES), projection=("Id", "EntityAtt2")
    ) if value % 2 else EntityQuery(set_name(CHAIN_TYPES))


def _digest(rows) -> str:
    return repr(sorted(repr(r) for r in rows))


def _percentile(latencies, fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def _latency_summary(latencies, elapsed: float) -> dict:
    return {
        "queries": len(latencies),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000.0, 4),
        "qps": round(len(latencies) / elapsed, 1) if elapsed else None,
    }


def _expected_answers(session: OrmSession) -> dict:
    """fingerprint -> {query kind+parity -> answer digest}, precomputed
    for both epochs the churn alternates between."""
    engine = session.engine

    def snapshot() -> dict:
        return {
            ("touched", parity): _digest(engine.query(_touched_query(parity)))
            for parity in (0, 1)
        } | {
            ("untouched", parity): _digest(
                engine.query(_untouched_query(parity))
            )
            for parity in (0, 1)
        }

    base_fp = engine.epoch.fingerprint
    expected = {base_fp: snapshot()}
    engine.evolve(_churn_smo())
    evolved_fp = engine.epoch.fingerprint
    expected[evolved_fp] = snapshot()
    engine.undo()
    assert engine.epoch.fingerprint == base_fp
    assert expected[base_fp][("touched", 0)] != expected[evolved_fp][
        ("touched", 0)
    ]
    return expected


class _ReaderPool:
    """CLIENTS threads issuing the mixed workload until stopped, each
    validating every response against the expected-answer table."""

    def __init__(self, session: OrmSession, expected: dict, clients: int):
        self.session = session
        self.expected = expected
        self.clients = clients
        self.latencies: list = []
        self.torn: list = []
        self.errors: list = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list = []

    def _reader(self, index: int) -> None:
        engine = self.session.engine
        local_latencies = []
        value = index
        try:
            while not self._stop.is_set():
                kind = "touched" if value % 3 == 0 else "untouched"
                query = (
                    _touched_query(value % 2)
                    if kind == "touched"
                    else _untouched_query(value % 2)
                )
                started = time.perf_counter()
                rows, epoch = engine.query_with_epoch(query)
                local_latencies.append(time.perf_counter() - started)
                want = self.expected.get(epoch.fingerprint)
                if want is None or _digest(rows) != want[(kind, value % 2)]:
                    with self._lock:
                        self.torn.append(
                            f"{kind} response inconsistent with epoch "
                            f"{epoch.epoch_id}"
                        )
                value += 1
        except Exception as exc:  # noqa: BLE001 — reported in results
            with self._lock:
                self.errors.append(repr(exc))
        finally:
            with self._lock:
                self.latencies.extend(local_latencies)

    def __enter__(self) -> "_ReaderPool":
        self._started = time.perf_counter()
        self._threads = [
            threading.Thread(target=self._reader, args=(i,))
            for i in range(self.clients)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self.elapsed = time.perf_counter() - self._started


def _measure_single_warm(session: OrmSession, queries: int = 200) -> dict:
    engine = session.engine
    # warm every shape the workload uses
    for parity in (0, 1):
        engine.query(_touched_query(parity))
        engine.query(_untouched_query(parity))
    latencies = []
    started = time.perf_counter()
    for value in range(queries):
        kind_touched = value % 3 == 0
        query = (
            _touched_query(value % 2)
            if kind_touched
            else _untouched_query(value % 2)
        )
        t0 = time.perf_counter()
        engine.query(query)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    return _latency_summary(latencies, elapsed)


def _measure_backend(
    backend_name: str,
    clients: int = CLIENTS,
    batches: int = BATCHES,
    query_only_seconds: float = QUERY_ONLY_SECONDS,
) -> dict:
    model = _chain_model()
    session = _session(model, backend_name, clients)
    engine = session.engine
    try:
        expected = _expected_answers(session)
        single = _measure_single_warm(session)

        with _ReaderPool(session, expected, clients) as pool:
            time.sleep(query_only_seconds)
        query_only = _latency_summary(pool.latencies, pool.elapsed)
        assert not pool.errors, pool.errors[0]
        torn_query_only = len(pool.torn)

        plans_before = session.plan_cache.stats()
        with _ReaderPool(session, expected, clients) as pool:
            for _ in range(batches):
                engine.evolve_many([_churn_smo()])
                engine.undo()
        churn = _latency_summary(pool.latencies, pool.elapsed)
        assert not pool.errors, pool.errors[0]
        plans_after = session.plan_cache.stats()

        # untouched-set plans must keep *hitting* across every swap: the
        # successor cache carries them over, so churn adds hits, and the
        # only misses are the touched set's rebuilds (bounded by epochs).
        survived = (
            plans_after.hits > plans_before.hits
            and plans_after.misses - plans_before.misses <= 4 * batches
        )
        stats = engine.stats()
        return {
            "clients": clients,
            "batches": batches,
            "single_warm": single,
            "query_only": query_only,
            "churn": churn,
            "churn_over_single_p99": (
                round(churn["p99_ms"] / single["p99_ms"], 2)
                if single["p99_ms"]
                else None
            ),
            "torn_reads": torn_query_only + len(pool.torn),
            "epochs_published": stats.epochs_published,
            "read_retries": stats.read_retries,
            "serialized_reads": stats.serialized_reads,
            "torn_reads_served_counter": stats.torn_reads_served,
            "plan_cache": {
                "hits": plans_after.hits,
                "misses": plans_after.misses,
                "invalidations": plans_after.invalidations,
                "hits_during_churn": plans_after.hits - plans_before.hits,
                "misses_during_churn": plans_after.misses
                - plans_before.misses,
                "untouched_plans_survived": survived,
            },
        }
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", BACKENDS)
def test_concurrent_serving_smoke(benchmark, backend_name):
    benchmark.pedantic(
        lambda: _measure_backend(backend_name, **SMOKE),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_no_torn_reads_under_churn(backend_name):
    result = _measure_backend(backend_name, **SMOKE)
    assert result["torn_reads"] == 0
    assert result["torn_reads_served_counter"] == 0
    assert result["epochs_published"] >= 2 * SMOKE["batches"]
    assert result["plan_cache"]["untouched_plans_survived"]


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    result = {
        "claim": "epoch-based serving engine: concurrent readers keep "
        "answering (lock-free on memory snapshots, seqlock-validated on "
        "SQLite) while evolve_many/undo batches publish new epochs by "
        "atomic swap; every response is consistent with exactly one "
        "epoch fingerprint (torn_reads must be 0) and untouched-set "
        "plans survive every swap",
        "config": {
            "chain_types": CHAIN_TYPES,
            "rows_per_set": ROWS_PER_SET,
            "clients": CLIENTS,
            "batches": BATCHES,
            "workload": "2/3 untouched-set queries, 1/3 touched-set, "
            "two projections each",
        },
        "backends": {
            backend_name: _measure_backend(backend_name)
            for backend_name in BACKENDS
        },
    }
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_serving_concurrent.json"
    )
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
