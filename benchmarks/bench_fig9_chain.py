"""Figure 9: SMO runtimes on the synthetic chain model vs full recompilation.

Each benchmark applies one SMO of the Section 4.2 operation mix to the
same pre-compiled chain model; ``test_fig9_full_recompilation`` is the
baseline bar.  ``python -m repro.bench.fig9`` prints the figure-shaped
table with speedups.
"""

from __future__ import annotations

import pytest

from repro.bench import smo_suite
from repro.compiler import compile_mapping
from repro.errors import ValidationError
from repro.incremental import IncrementalCompiler
from repro.workloads.chain import chain_mapping, entity_name

COMPILER = IncrementalCompiler()


def _apply(model, factory):
    """Apply a freshly built SMO; a validation abort is still a timed,
    complete incremental compilation (the paper's AddEntityTPC cases)."""
    try:
        COMPILER.apply(model, factory(model))
    except ValidationError:
        pass


def test_fig9_ae_tpt(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.ae_tpt(entity_name(10)))


def test_fig9_ae_tpc(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.ae_tpc(entity_name(11)))


def test_fig9_ae_tph(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.ae_tph(entity_name(12)))


def test_fig9_aa_fk(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.aa_fk(entity_name(13), entity_name(30)))


def test_fig9_aa_jt(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.aa_jt(entity_name(14), entity_name(31)))


def test_fig9_ap(benchmark, chain_model):
    benchmark(_apply, chain_model, smo_suite.ap(entity_name(15)))


@pytest.mark.parametrize("n_splits", [1, 2, 3])
def test_fig9_aep_tpt(benchmark, chain_model, n_splits):
    benchmark(_apply, chain_model, smo_suite.aep_tpt(entity_name(16), n_splits))


def test_fig9_full_recompilation(benchmark, chain_model):
    n_types = len(chain_model.client_schema.entity_sets)
    benchmark.pedantic(
        lambda: compile_mapping(chain_mapping(n_types)), rounds=1, iterations=1
    )


def test_fig9_headline_speedup(benchmark, chain_model):
    """The paper's headline: incremental ≥ 100× faster than full
    recompilation on the chain model (the paper reports ≥ 300× at the
    published 1002-type size; the ratio grows with model size)."""
    import time

    n_types = len(chain_model.client_schema.entity_sets)

    def run():
        t0 = time.perf_counter()
        compile_mapping(chain_mapping(n_types))
        full = time.perf_counter() - t0
        t0 = time.perf_counter()
        COMPILER.apply(chain_model, smo_suite.ae_tpt(entity_name(20))(chain_model))
        incremental = time.perf_counter() - t0
        ratio = full / incremental
        assert ratio > 20, f"expected a large speedup, got {ratio:.1f}x"
        return ratio

    benchmark.pedantic(run, rounds=1, iterations=1)
