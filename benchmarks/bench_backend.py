"""Memory interpreter vs SQLite engine: query and migration wall time.

Loads the paper's Figure 1 model at 10^3 .. 10^5 persons and times, on
each backend,

* a whole-entity-set query (``Persons``) and a selective conditional
  query (customers above a credit-score cut), and
* one incremental evolution (``AddProperty`` on Employee) — which on
  SQLite is a real table rebuild (CREATE scratch / copy / DROP /
  RENAME) executed transactionally.

Read the numbers with the architecture in mind: migration wall time on
both engines is dominated by the shared Python planning pass (read old
views, re-store through new views, diff), so the two columns track each
other — the interesting number is that the SQLite rebuild adds next to
nothing on top.  On queries the interpreter currently *wins*, because
the SQLite path pays per-row decode + Python-side dedup on top of the
engine's work; the SQL path's value is the disk-backed, natively
constrained store, not raw speed at these sizes.

``python benchmarks/bench_backend.py`` writes ``BENCH_backend.json``;
the pytest entries keep a fast smoke point for CI.  The 10^5 size runs
only with ``REPRO_FULL=1`` (the planning pass alone is hours of pure
Python at that scale).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.algebra.conditions import Comparison, IsOf, and_
from repro.backend import create_backend
from repro.compiler import compile_mapping
from repro.edm import Attribute, Entity, STRING
from repro.edm.instances import ClientState
from repro.incremental import AddProperty, CompiledModel
from repro.mapping.roundtrip import apply_update_views
from repro.query import EntityQuery
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage4

SMOKE_SIZE = 200
SIZES = [1_000, 10_000]
if os.environ.get("REPRO_FULL"):
    SIZES.append(100_000)

QUERY_REPEATS = 3


def _model() -> CompiledModel:
    mapping = mapping_stage4()
    return CompiledModel(mapping, compile_mapping(mapping).views)


def _client_state(model: CompiledModel, size: int) -> ClientState:
    """*size* persons over the Figure 1 schema: a third of each type,
    with every customer supported by some employee."""
    state = ClientState(model.client_schema)
    employees = []
    for i in range(size):
        kind = i % 3
        if kind == 0:
            entity = Entity.of("Person", Id=i, Name=f"p{i}")
        elif kind == 1:
            entity = Entity.of(
                "Employee", Id=i, Name=f"e{i}", Department=f"d{i % 7}"
            )
            employees.append(i)
        else:
            entity = Entity.of(
                "Customer",
                Id=i,
                Name=f"c{i}",
                CredScore=300 + (i * 37) % 550,
                BillAddr=f"addr {i}",
            )
        state.add_entity("Persons", entity)
        if kind == 2 and employees:
            state.add_association(
                "Supports", (i,), (employees[i % len(employees)],)
            )
    return state


def _session(model: CompiledModel, backend_name: str, size: int) -> OrmSession:
    client = _client_state(model, size)
    store = apply_update_views(model.views, client, model.store_schema)
    backend = create_backend(backend_name, model.store_schema, store_state=store)
    return OrmSession(model, backend=backend)


QUERIES = {
    "scan": EntityQuery("Persons"),
    "selective": EntityQuery(
        "Persons", and_(IsOf("Customer"), Comparison("CredScore", ">=", 700))
    ),
}


def _time_queries(session: OrmSession) -> dict:
    timings = {}
    for label, query in QUERIES.items():
        started = time.perf_counter()
        for _ in range(QUERY_REPEATS):
            rows = session.query(query)
        timings[label + "_s"] = round(
            (time.perf_counter() - started) / QUERY_REPEATS, 4
        )
        timings[label + "_rows"] = len(rows)
    return timings


def _time_migration(session: OrmSession) -> float:
    smo = AddProperty(
        "Employee", Attribute("Title", STRING, nullable=True), "Emp", "Title"
    )
    started = time.perf_counter()
    session.evolve(smo)
    return round(time.perf_counter() - started, 4)


def _measure(model: CompiledModel, backend_name: str, size: int) -> dict:
    session = _session(model, backend_name, size)
    try:
        result = _time_queries(session)
        result["migrate_s"] = _time_migration(session)
        result["rows"] = session.backend.row_count()
        return result
    finally:
        session.backend.close()


def _compare(model: CompiledModel, size: int) -> dict:
    memory = _measure(model, "memory", size)
    sqlite = _measure(model, "sqlite", size)
    # both engines must see the same data and answer identically
    assert memory["rows"] == sqlite["rows"]
    for label in QUERIES:
        assert memory[label + "_rows"] == sqlite[label + "_rows"]
    sqlite.pop("rows")
    return {
        "persons": size,
        "store_rows": memory.pop("rows"),
        "memory": memory,
        "sqlite": sqlite,
        "scan_speedup": round(memory["scan_s"] / sqlite["scan_s"], 2)
        if sqlite["scan_s"]
        else None,
    }


# ---------------------------------------------------------------------------
# pytest smoke entries (CI)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
def test_backend_bench_smoke(benchmark, backend_name):
    model = _model()
    benchmark.pedantic(
        lambda: _measure(model, backend_name, SMOKE_SIZE),
        rounds=1,
        iterations=1,
    )


def test_backends_agree_on_answers():
    result = _compare(_model(), SMOKE_SIZE)
    assert result["memory"]["scan_rows"] == SMOKE_SIZE


# ---------------------------------------------------------------------------
# JSON driver
# ---------------------------------------------------------------------------

def main() -> None:
    model = _model()
    result = {
        "claim": "query + migration wall time, memory interpreter vs "
        "generated SQL on SQLite, over identical data and answers",
        "query_repeats": QUERY_REPEATS,
        "points": [_compare(model, size) for size in SIZES],
    }
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_backend.json")
    with open(os.path.abspath(out), "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
