"""Ablation: neighborhood-scoped validation vs whole-mapping revalidation.

Section 1.2: "since we need to focus only on the neighborhood of schema
changes, the containment tests are smaller than those to validate the
whole mapping."  This ablation applies the same SMO twice: once with the
paper's neighborhood validation (the SMO's own checks), once followed by
a full Algorithm-1-of-[13] validation of the evolved mapping.
"""

from __future__ import annotations


from repro.bench import smo_suite
from repro.compiler import validate_mapping
from repro.incremental import IncrementalCompiler
from repro.workloads.chain import entity_name

COMPILER = IncrementalCompiler()


def test_neighborhood_validation(benchmark, chain_model):
    factory = smo_suite.aa_fk(entity_name(43), entity_name(44))
    benchmark(lambda: COMPILER.apply(chain_model, factory(chain_model)))


def test_whole_mapping_revalidation(benchmark, chain_model):
    factory = smo_suite.aa_fk(entity_name(45), entity_name(46))

    def revalidate_everything():
        result = COMPILER.apply(chain_model, factory(chain_model))
        validate_mapping(result.model.mapping, result.model.views)

    benchmark.pedantic(revalidate_everything, rounds=2, iterations=1)
