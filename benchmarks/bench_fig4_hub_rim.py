"""Figure 4: full compilation time of the hub-and-rim model.

Benchmarks a diagonal of the (N, M) grid for the TPH mapping (whose cost
is exponential in N·M) and the same points for the TPT contrast mapping
(Section 1.1: "if each entity type is mapped to a separate table, mapping
compilation is under 0.2 seconds for all of the cases").

The paper-shaped full sweep (with per-point budgets and censored points)
is produced by ``python -m repro.bench.fig4``.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_mapping
from repro.workloads.hub_rim import hub_rim_mapping

TPH_POINTS = [(1, 2), (1, 4), (2, 2), (2, 4), (3, 2)]
TPT_POINTS = TPH_POINTS


@pytest.mark.parametrize("n,m", TPH_POINTS)
def test_fig4_tph_full_compile(benchmark, n, m):
    mapping = hub_rim_mapping(n, m, "TPH")
    benchmark.pedantic(
        lambda: compile_mapping(hub_rim_mapping(n, m, "TPH")),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("n,m", TPT_POINTS)
def test_fig4_tpt_contrast(benchmark, n, m):
    benchmark.pedantic(
        lambda: compile_mapping(hub_rim_mapping(n, m, "TPT")),
        rounds=2,
        iterations=1,
    )


def test_fig4_shape_tph_dominates_tpt(benchmark):
    """The claim under test: at equal (N, M), TPH full compilation costs a
    multiple of TPT — the growth that motivates incremental compilation."""
    import time

    def run():
        t0 = time.perf_counter()
        compile_mapping(hub_rim_mapping(2, 4, "TPH"))
        tph = time.perf_counter() - t0
        t0 = time.perf_counter()
        compile_mapping(hub_rim_mapping(2, 4, "TPT"))
        tpt = time.perf_counter() - t0
        assert tph > tpt, f"expected TPH ({tph:.3f}s) slower than TPT ({tpt:.3f}s)"
        return tph / tpt

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
